// Package search is the adaptive config-space optimizer over the
// fan-out replay engine: instead of enumerating a grid the way
// internal/sweeprun does, it explores the multi-dimensional
// (streams, depth, filter, czone, ...) space adaptively and answers
// the paper's cost-effectiveness question directly — "best hit rate
// under an extra-bandwidth budget", "cheapest configuration within 1%
// of peak".
//
// Three strategies share one batched evaluator:
//
//   - halving: successive halving — score a generation of candidates
//     on a few sample windows (core.ReplayStoreMultiPrefix decodes the
//     prefix once for the whole generation), keep the top half, and
//     re-evaluate survivors on progressively longer prefixes until the
//     finalists run the full trace;
//   - pareto: Pareto-front exploration over (metric, cost) — evaluate
//     a seeded sample on the full trace, then keep expanding the
//     neighborhood of the current cost.Front until the budget is
//     spent;
//   - grid: exhaustive evaluation, the oracle the optimize-smoke CI
//     gate compares the seeded strategies against.
//
// Everything is deterministic by construction: candidate generation
// draws from a rand.Rand seeded by Spec.Seed, evaluation goes through
// replay entry points that are machine-independent and identical at
// any parallelism width, and ties break by candidate order. A fixed
// seed therefore reproduces the same result bit-for-bit on any host at
// any -parallel width.
package search

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"

	"streamsim/internal/cost"
	"streamsim/internal/sweeprun"
	"streamsim/internal/tab"
)

// Dim is one dimension of the candidate space: a sweepable parameter
// (a sweeprun.ParamSet key) and its admissible values, in order. The
// pareto strategy's neighborhood moves step along this order.
type Dim struct {
	// Param names the parameter (see sweeprun.ParamNames).
	Param string `json:"param"`
	// Values are the admissible settings, in presentation order.
	Values []int `json:"values"`
}

// Constraint bounds one metric of an acceptable configuration, e.g.
// {Metric: "eb", Op: "<=", Value: 30} — the paper's "extra bandwidth
// budget". Constraints restrict the winner, never the explored front.
type Constraint struct {
	// Metric is hit, eb, missrate or cost.
	Metric string `json:"metric"`
	// Op is "<=" or ">=".
	Op string `json:"op"`
	// Value is the bound.
	Value float64 `json:"value"`
}

// ParseConstraint parses the CLI form "metric<=value" or
// "metric>=value".
func ParseConstraint(s string) (Constraint, error) {
	for _, op := range []string{"<=", ">="} {
		if m, v, ok := strings.Cut(s, op); ok {
			val, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
			if err != nil {
				return Constraint{}, fmt.Errorf("search: bad constraint value in %q: %w", s, err)
			}
			return Constraint{Metric: strings.TrimSpace(m), Op: op, Value: val}, nil
		}
	}
	return Constraint{}, fmt.Errorf("search: constraint %q wants the form metric<=value or metric>=value", s)
}

// String renders the CLI form back.
func (c Constraint) String() string {
	return c.Metric + c.Op + strconv.FormatFloat(c.Value, 'g', -1, 64)
}

// Spec describes one optimization. Zero values of the optional fields
// mean small / hit / 0.5 / halving / 256 evaluations / seed 1.
type Spec struct {
	// Workload is a benchmark name from the paper's Table 1, or a
	// "custom:<seq>,<stride>,<random>" mix.
	Workload string `json:"workload"`
	// Size is the input size: "small" (default) or "large".
	Size string `json:"size,omitempty"`
	// Scale is the workload iteration scale in (0, 1] (default 0.5).
	Scale float64 `json:"scale,omitempty"`
	// Metric is the objective: hit (maximized), eb or missrate
	// (minimized). Default hit.
	Metric string `json:"metric,omitempty"`
	// Space is the candidate space, one Dim per parameter.
	Space []Dim `json:"space"`
	// Strategy is halving (default), pareto or grid.
	Strategy string `json:"strategy,omitempty"`
	// Budget caps the total number of candidate evaluations (default
	// 256). The grid strategy requires Budget >= the full grid size.
	Budget int `json:"budget,omitempty"`
	// Seed seeds candidate sampling; a fixed seed reproduces the run
	// bit-for-bit (default 1).
	Seed int64 `json:"seed,omitempty"`
	// Constraints restrict the winner (not the front).
	Constraints []Constraint `json:"constraints,omitempty"`
	// Parallel is the number of evaluation groups a generation is
	// split across. 0 and 1 both mean one group. Results are identical
	// at any width; only wall-clock time changes.
	Parallel int `json:"parallel,omitempty"`
	// Scratch disables the checkpointed incremental-replay layer:
	// every halving rung then re-simulates survivors from window 0 and
	// no evaluation is served from the eval memo — the pre-checkpoint
	// behaviour. Winners, fronts and eval counts are identical either
	// way; the flag exists for benchmarking the saving and for the CI
	// equivalence gate (make optimize-smoke).
	Scratch bool `json:"scratch,omitempty"`
}

// WithDefaults fills unset optional fields; the service hashes the
// defaulted form so explicit defaults and omitted fields memoize to
// the same job.
func (s Spec) WithDefaults() Spec {
	if s.Size == "" {
		s.Size = "small"
	}
	if s.Metric == "" {
		s.Metric = "hit"
	}
	if s.Scale == 0 {
		s.Scale = 0.5
	}
	if s.Strategy == "" {
		s.Strategy = "halving"
	}
	if s.Budget == 0 {
		s.Budget = 256
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	return s
}

// maxGrid bounds the cross-product size Validate accepts, far above
// any realistic space but low enough to fail fast on a typo'd one.
const maxGrid = 1 << 20

// Validate rejects malformed specs without running anything.
func (s Spec) Validate() error {
	s = s.WithDefaults()
	if s.Workload == "" {
		return fmt.Errorf("search: workload is required")
	}
	if _, err := sweeprun.BuildWorkload(s.Workload, s.Size); err != nil {
		return err
	}
	switch s.Metric {
	case "hit", "eb", "missrate":
	default:
		return fmt.Errorf("search: unknown objective metric %q (hit, eb or missrate)", s.Metric)
	}
	if s.Scale <= 0 || s.Scale > 1 {
		return fmt.Errorf("search: scale %v outside (0, 1]", s.Scale)
	}
	switch s.Strategy {
	case "halving", "pareto", "grid":
	default:
		return fmt.Errorf("search: unknown strategy %q (halving, pareto or grid)", s.Strategy)
	}
	if s.Budget < 1 {
		return fmt.Errorf("search: budget %d must be >= 1", s.Budget)
	}
	if s.Parallel < 0 {
		return fmt.Errorf("search: parallel %d must be >= 0", s.Parallel)
	}
	if len(s.Space) == 0 {
		return fmt.Errorf("search: space needs at least one dimension")
	}
	grid := 1
	dimSeen := make(map[string]bool, len(s.Space))
	for _, d := range s.Space {
		if _, ok := sweeprun.ParamSet[d.Param]; !ok {
			return fmt.Errorf("search: unknown parameter %q (available: %s)", d.Param, sweeprun.ParamNames())
		}
		if dimSeen[d.Param] {
			return fmt.Errorf("search: parameter %q appears in two dimensions", d.Param)
		}
		dimSeen[d.Param] = true
		if len(d.Values) == 0 {
			return fmt.Errorf("search: dimension %q has no values", d.Param)
		}
		valSeen := make(map[int]bool, len(d.Values))
		for _, v := range d.Values {
			if valSeen[v] {
				return fmt.Errorf("search: duplicate value %d in dimension %q", v, d.Param)
			}
			valSeen[v] = true
		}
		if grid > maxGrid/len(d.Values) {
			return fmt.Errorf("search: space larger than %d configurations", maxGrid)
		}
		grid *= len(d.Values)
	}
	if s.Strategy == "grid" && grid > s.Budget {
		return fmt.Errorf("search: grid strategy needs budget >= grid size (%d > %d)", grid, s.Budget)
	}
	for _, c := range s.Constraints {
		switch c.Metric {
		case "hit", "eb", "missrate", "cost":
		default:
			return fmt.Errorf("search: unknown constraint metric %q (hit, eb, missrate or cost)", c.Metric)
		}
		if c.Op != "<=" && c.Op != ">=" {
			return fmt.Errorf("search: constraint op %q must be <= or >=", c.Op)
		}
	}
	return nil
}

// Eval is one scored candidate.
type Eval struct {
	// Config is the human-readable assignment, e.g. "streams=8 depth=2".
	Config string `json:"config"`
	// Values are the assigned values, parallel to Spec.Space.
	Values []int `json:"values"`
	// Hit, EB and MissRate are the replayed metrics (percent).
	Hit      float64 `json:"hit"`
	EB       float64 `json:"eb"`
	MissRate float64 `json:"missrate"`
	// Cost is the priced node (internal/cost, default prices).
	Cost float64 `json:"cost"`
	// Windows is the prefix length the score came from: 0 means the
	// full trace, n > 0 means only the first n sample windows (an
	// early halving rung).
	Windows int `json:"windows,omitempty"`
}

// MetricValue returns one named metric of the evaluation.
func (e Eval) MetricValue(name string) float64 {
	switch name {
	case "hit":
		return e.Hit
	case "eb":
		return e.EB
	case "missrate":
		return e.MissRate
	default:
		return e.Cost
	}
}

// score converts the objective metric into a higher-is-better value.
func score(metric string, e Eval) float64 {
	v := e.MetricValue(metric)
	if metric == "hit" {
		return v
	}
	return -v
}

// satisfies reports whether an evaluation meets every constraint.
func satisfies(e Eval, cs []Constraint) bool {
	for _, c := range cs {
		v := e.MetricValue(c.Metric)
		if c.Op == "<=" && v > c.Value {
			return false
		}
		if c.Op == ">=" && v < c.Value {
			return false
		}
	}
	return true
}

// Progress is one generation's snapshot, streamed as NDJSON by the
// service's /v1/optimize endpoint. The front only improves between
// snapshots: it is recomputed over every full-trace evaluation so far.
type Progress struct {
	// Strategy echoes the running strategy.
	Strategy string `json:"strategy"`
	// Generation counts evaluation rounds (halving rungs, pareto
	// generations), from 0.
	Generation int `json:"generation"`
	// Evals is the total candidate evaluations spent so far.
	Evals int `json:"evals"`
	// Budget echoes Spec.Budget.
	Budget int `json:"budget"`
	// Windows is the prefix length this generation was scored on
	// (0 = full trace).
	Windows int `json:"windows,omitempty"`
	// WindowsResumed and WindowsReplayed split the generation's window
	// work across its candidates: windows skipped by restoring rung
	// checkpoints versus windows actually replayed. Both zero for
	// strategies that don't checkpoint (pareto, grid) and under
	// Spec.Scratch.
	WindowsResumed  int `json:"windows_resumed,omitempty"`
	WindowsReplayed int `json:"windows_replayed,omitempty"`
	// FrontSize is len(Front).
	FrontSize int `json:"front_size"`
	// Best is the best-scoring evaluation of the deepest rung reached.
	Best *Eval `json:"best,omitempty"`
	// Front is the current (metric, cost) Pareto front, ascending cost.
	Front []Eval `json:"front,omitempty"`
}

// Result is a finished optimization.
type Result struct {
	// Spec echoes the defaulted spec.
	Spec Spec `json:"spec"`
	// Evals is the total number of candidate evaluations spent.
	Evals int `json:"evals"`
	// Front is the (metric, cost) Pareto front over every full-trace
	// evaluation, ascending cost.
	Front []Eval `json:"front"`
	// Winner is the best-objective full-trace evaluation satisfying
	// every constraint (nil when none does). With no constraints it is
	// the peak.
	Winner *Eval `json:"winner,omitempty"`
	// Peak is the best-objective full-trace evaluation regardless of
	// constraints — the reference for CheapestWithin.
	Peak *Eval `json:"peak,omitempty"`
	// RefsSimulated counts the trace references actually replayed, and
	// RefsScratch the references the same evaluations would have
	// replayed without the incremental layer (they are equal under
	// Spec.Scratch). Their ratio is the checkpoint/memo saving the
	// optimize-smoke gate asserts.
	RefsSimulated int64 `json:"refs_simulated,omitempty"`
	RefsScratch   int64 `json:"refs_scratch,omitempty"`
	// CacheHits counts evaluations served from the eval memo without
	// replaying anything (still charged against Budget, so budget
	// accounting matches a scratch run exactly).
	CacheHits int `json:"cache_hits,omitempty"`
}

// CheapestWithin returns the cheapest front configuration whose
// objective is within frac (e.g. 0.01 for 1%) of the peak's, or nil
// when there is no front. For minimized metrics "within frac" means at
// most (1+frac) times the peak value.
func (r *Result) CheapestWithin(frac float64) *Eval {
	if r.Peak == nil {
		return nil
	}
	peak := r.Peak.MetricValue(r.Spec.Metric)
	for i := range r.Front { // ascending cost: first admissible is cheapest
		e := &r.Front[i]
		v := e.MetricValue(r.Spec.Metric)
		ok := false
		if r.Spec.Metric == "hit" {
			ok = v >= peak*(1-frac)
		} else {
			ok = v <= peak*(1+frac)
		}
		if ok {
			return e
		}
	}
	return nil
}

// Summary is the one-line answer, stable across strategies that find
// the same winner — the optimize-smoke CI gate compares it between
// seeded halving and the exhaustive grid.
func (r *Result) Summary() string {
	if r.Winner == nil {
		return "winner: none (no configuration satisfies the constraints)"
	}
	w := r.Winner
	return fmt.Sprintf("winner: %s %s=%.4f cost=$%.0f", w.Config, r.Spec.Metric, w.MetricValue(r.Spec.Metric), w.Cost)
}

// Table renders the front for the CLI and the service job store.
func (r *Result) Table() *tab.Table {
	dims := make([]string, len(r.Spec.Space))
	for i, d := range r.Spec.Space {
		dims[i] = d.Param
	}
	t := &tab.Table{
		Title:   fmt.Sprintf("%s: optimize %s over %s (%s)", r.Spec.Workload, r.Spec.Metric, strings.Join(dims, ","), r.Spec.Strategy),
		Columns: []string{"front", "config", r.Spec.Metric, "eb", "cost $"},
	}
	for i, e := range r.Front {
		t.AddRow(strconv.Itoa(i+1), e.Config, tab.F(e.MetricValue(r.Spec.Metric)), tab.F(e.EB), tab.F(e.Cost))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d evaluations of %d budget, seed %d", r.Evals, r.Spec.Budget, r.Spec.Seed),
		r.Summary(),
	)
	for _, c := range r.Spec.Constraints {
		t.Notes = append(t.Notes, "constraint: "+c.String())
	}
	if cheap := r.CheapestWithin(0.01); cheap != nil {
		t.Notes = append(t.Notes,
			fmt.Sprintf("cheapest within 1%% of peak: %s %s=%.4f cost=$%.0f",
				cheap.Config, r.Spec.Metric, cheap.MetricValue(r.Spec.Metric), cheap.Cost))
	}
	return t
}

// evalsTotal, evalCacheHits and lastFrontSize back the service's
// search_* gauges.
var (
	evalsTotal    atomic.Uint64
	evalCacheHits atomic.Uint64
	lastFrontSize atomic.Int64
)

// EvalsTotal reports the number of candidate evaluations this process
// has performed across all optimizations.
func EvalsTotal() uint64 { return evalsTotal.Load() }

// EvalCacheHits reports how many of those evaluations were served from
// the generation-spanning eval memo without replaying anything.
func EvalCacheHits() uint64 { return evalCacheHits.Load() }

// LastFrontSize reports the Pareto-front size of the most recent
// optimization (its latest generation while one is running).
func LastFrontSize() int { return int(lastFrontSize.Load()) }

// Run executes the optimization and returns the result. A fixed seed
// is bit-reproducible on any host at any Spec.Parallel width.
//
//simlint:deterministic
func Run(ctx context.Context, s Spec) (*Result, error) {
	return RunProgress(ctx, s, nil)
}

// RunProgress is Run with a per-generation progress callback (nil is
// allowed). The callback runs on the optimizer's goroutine between
// generations; it must not block indefinitely.
func RunProgress(ctx context.Context, s Spec, onProgress func(Progress)) (*Result, error) {
	s = s.WithDefaults()
	if err := s.Validate(); err != nil {
		return nil, err
	}
	_, tr, err := sweeprun.Record(ctx, s.Workload, s.Size, s.Scale)
	if err != nil {
		return nil, err
	}
	ev := &evaluator{spec: s, tr: tr, prices: cost.DefaultPrices()}
	if !s.Scratch {
		ev.memo = make(map[string]Eval)
		ev.states = make(map[string]*evalState)
	}
	var res *Result
	switch s.Strategy {
	case "pareto":
		res, err = runPareto(ctx, ev, onProgress)
	case "grid":
		res, err = runGrid(ctx, ev, onProgress)
	default:
		res, err = runHalving(ctx, ev, onProgress)
	}
	if err != nil {
		return nil, err
	}
	lastFrontSize.Store(int64(len(res.Front)))
	return res, nil
}

// finishResult assembles front, peak and winner from the full-trace
// evaluations, ascending cost on the front, ties by candidate order,
// plus the evaluator's replay-cost accounting.
func finishResult(ev *evaluator, full []Eval) *Result {
	s := ev.spec
	r := &Result{
		Spec:          s,
		Evals:         ev.evals,
		Front:         computeFront(s.Metric, full),
		RefsSimulated: ev.refsSim,
		RefsScratch:   ev.refsScr,
		CacheHits:     ev.cacheHits,
	}
	best := func(eligible func(Eval) bool) *Eval {
		var b *Eval
		for i := range full {
			e := &full[i]
			if !eligible(*e) {
				continue
			}
			if b == nil || score(s.Metric, *e) > score(s.Metric, *b) {
				b = e
			}
		}
		if b == nil {
			return nil
		}
		c := *b
		return &c
	}
	r.Peak = best(func(Eval) bool { return true })
	r.Winner = best(func(e Eval) bool { return satisfies(e, s.Constraints) })
	return r
}

// computeFront maps full-trace evaluations onto cost.Front.
func computeFront(metric string, full []Eval) []Eval {
	pts := make([]cost.Point, len(full))
	for i, e := range full {
		pts[i] = cost.Point{Metric: score(metric, e), Cost: e.Cost}
	}
	idx := cost.Front(pts)
	front := make([]Eval, len(idx))
	for k, i := range idx {
		front[k] = full[i]
	}
	return front
}

// progressFor builds one generation snapshot over the cumulative
// full-trace evaluations, with the deepest rung's best.
func progressFor(s Spec, gen, evals, windows int, full []Eval, best *Eval) Progress {
	front := computeFront(s.Metric, full)
	lastFrontSize.Store(int64(len(front)))
	p := Progress{
		Strategy:   s.Strategy,
		Generation: gen,
		Evals:      evals,
		Budget:     s.Budget,
		Windows:    windows,
		FrontSize:  len(front),
		Front:      front,
	}
	if best != nil {
		b := *best
		p.Best = &b
	}
	return p
}

// bestOf returns a copy of the highest-scoring evaluation, ties to the
// earliest.
func bestOf(metric string, evals []Eval) *Eval {
	if len(evals) == 0 {
		return nil
	}
	b := 0
	for i := 1; i < len(evals); i++ {
		if score(metric, evals[i]) > score(metric, evals[b]) {
			b = i
		}
	}
	c := evals[b]
	return &c
}

// rankByScore returns eval indices ordered best-first, ties keeping
// candidate order (the stable sort is what makes halving's survivor
// selection deterministic).
func rankByScore(metric string, evals []Eval) []int {
	order := make([]int, len(evals))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return score(metric, evals[order[a]]) > score(metric, evals[order[b]])
	})
	return order
}
