// Candidate generation: enumeration, seeded distinct sampling and the
// pareto strategy's neighborhood moves. A candidate is a value
// assignment parallel to Spec.Space; everything here is deterministic
// for a fixed seed — sampling draws from one seeded rand.Rand, maps
// are used only for membership (never ranged), and all orders derive
// from dimension and draw order.
package search

import (
	"math/rand"
	"strconv"
	"strings"
)

// candidate assigns one value per dimension, parallel to Spec.Space.
type candidate []int

// key is the dedup identity ("8,2" for streams=8 depth=2).
func (c candidate) key() string {
	var b strings.Builder
	for i, v := range c {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(v))
	}
	return b.String()
}

// gridSize is the cross-product cardinality of the space.
func gridSize(dims []Dim) int {
	n := 1
	for _, d := range dims {
		n *= len(d.Values)
	}
	return n
}

// enumerate lists the whole grid in lexicographic dimension order
// (last dimension fastest), matching nested sweep loops.
func enumerate(dims []Dim) []candidate {
	out := make([]candidate, 0, gridSize(dims))
	cur := make([]int, len(dims))
	var rec func(i int)
	rec = func(i int) {
		if i == len(dims) {
			out = append(out, append(candidate(nil), cur...))
			return
		}
		for _, v := range dims[i].Values {
			cur[i] = v
			rec(i + 1)
		}
	}
	rec(0)
	return out
}

// sample draws n distinct candidates not already in seen, marking them
// seen. Draw order is the result order. When rejection sampling stalls
// (nearly exhausted grid), it falls back to the first unseen points in
// enumeration order, so the result is always deterministic and of full
// size when the grid allows.
func sample(rng *rand.Rand, dims []Dim, n int, seen map[string]bool) []candidate {
	out := make([]candidate, 0, n)
	tries := 20 * n
	for len(out) < n && tries > 0 {
		tries--
		c := make(candidate, len(dims))
		for i, d := range dims {
			c[i] = d.Values[rng.Intn(len(d.Values))]
		}
		k := c.key()
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, c)
	}
	if len(out) < n {
		for _, c := range enumerate(dims) {
			if len(out) == n {
				break
			}
			k := c.key()
			if seen[k] {
				continue
			}
			seen[k] = true
			out = append(out, c)
		}
	}
	return out
}

// neighbors returns the one-step moves from c: for each dimension in
// order, the adjacent values (previous, then next) in that dimension's
// Values order.
func neighbors(c candidate, dims []Dim) []candidate {
	var out []candidate
	for i, d := range dims {
		at := 0
		for j, v := range d.Values {
			if v == c[i] {
				at = j
				break
			}
		}
		for _, j := range []int{at - 1, at + 1} {
			if j < 0 || j >= len(d.Values) {
				continue
			}
			n := append(candidate(nil), c...)
			n[i] = d.Values[j]
			out = append(out, n)
		}
	}
	return out
}
