package workload_test

// Determinism golden test: the simulator must be a pure function of
// (config, seed, workload). Two back-to-back runs with identical
// inputs have to produce byte-identical statistics — any divergence
// means hidden global state (an unseeded rand source, map-iteration
// order leaking into results, wall-clock coupling) crept into a hot
// path. The simlint analyzers (seededrand, maporder) enforce the same
// property statically; this test enforces it end to end.

import (
	"bytes"
	"encoding/json"
	"testing"

	"streamsim/internal/core"
	"streamsim/internal/workload"
)

// determinismScale keeps the paired full-system runs fast while still
// exercising every component: caches, streams, both filters, czones.
const determinismScale = 0.05

// runOnce executes one full simulation and returns its Results
// serialized to JSON. JSON (not fmt's %+v of live structs) makes the
// comparison structural and byte-stable.
func runOnce(t *testing.T, name string, cfg core.Config) []byte {
	t.Helper()
	w, err := workload.New(name, workload.SizeSmall)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(sys, determinismScale); err != nil {
		t.Fatal(err)
	}
	out, err := json.MarshalIndent(sys.Results(), "", " ")
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestDeterministicReplay(t *testing.T) {
	// mgrid stresses the unit-stride path, fftpde the czone path; both
	// caches use random replacement, so this also proves the seeded
	// RNG plumbing is repeatable.
	for _, name := range []string{"mgrid", "fftpde"} {
		t.Run(name, func(t *testing.T) {
			cfg := core.DefaultConfig()
			first := runOnce(t, name, cfg)
			second := runOnce(t, name, cfg)
			if !bytes.Equal(first, second) {
				t.Errorf("two identical %s runs diverged:\nfirst:\n%s\nsecond:\n%s",
					name, first, second)
			}
			if len(first) == 0 || !bytes.Contains(first, []byte("Bandwidth")) {
				t.Fatalf("results serialization looks empty: %s", first)
			}
		})
	}
}

// TestSeedChangesResults is the control: with a different cache
// replacement seed the random-replacement caches must behave
// differently, proving the test above compares live state rather than
// constants.
func TestSeedChangesResults(t *testing.T) {
	cfg := core.DefaultConfig()
	base := runOnce(t, "mgrid", cfg)
	cfg.L1D.Seed = 12345
	reseeded := runOnce(t, "mgrid", cfg)
	if bytes.Equal(base, reseeded) {
		t.Error("changing the L1D replacement seed did not change the results; " +
			"the seed is not reaching the cache RNG")
	}
}
