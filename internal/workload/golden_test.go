package workload_test

// Golden regression test: stream hit rates of every benchmark under
// the paper's three configurations (plain / filtered / filtered+czone)
// at a fixed trace scale. These values are this repository's
// calibration — the numbers EXPERIMENTS.md's comparisons rest on.
// A failure here means a change to the workload models, the stream
// machinery or the filters moved the reproduction; regenerate the
// table deliberately (see the comment at the bottom) if the change is
// intended.

import (
	"math"
	"testing"

	"streamsim/internal/core"
	"streamsim/internal/stream"
	"streamsim/internal/workload"
)

// goldenScale must match the scale the table was generated at.
const goldenScale = 0.2

// goldenTolerance absorbs trace-length jitter; calibration drifts
// larger than this are real behaviour changes.
const goldenTolerance = 3.0

// golden holds {plain, filtered, filtered+czone} stream hit rates.
var golden = map[string][3]float64{
	"embar":  {99.5, 99.4, 99.4},
	"mgrid":  {91.5, 84.6, 84.6},
	"cgm":    {85.6, 85.3, 85.3},
	"fftpde": {33.4, 34.5, 84.8},
	"is":     {74.7, 61.5, 61.5},
	"appsp":  {39.0, 39.1, 77.0},
	"appbt":  {69.8, 54.0, 61.2},
	"applu":  {67.6, 67.5, 67.6},
	"spec77": {90.3, 90.0, 94.4},
	"adm":    {36.5, 22.1, 22.1},
	"bdna":   {58.1, 50.9, 50.9},
	"dyfesm": {22.2, 15.3, 16.7},
	"mdg":    {61.4, 44.0, 52.4},
	"qcd":    {46.0, 32.3, 35.9},
	"trfd":   {44.9, 42.6, 83.0},
}

func TestGoldenHitRates(t *testing.T) {
	modes := []string{"plain", "filtered", "strided"}
	for _, name := range workload.Names() {
		want, ok := golden[name]
		if !ok {
			t.Errorf("no golden entry for %s", name)
			continue
		}
		for mi, mode := range modes {
			cfg := core.DefaultConfig()
			cfg.Streams = stream.Config{Streams: 10, Depth: 2}
			switch mode {
			case "plain":
				cfg.UnitFilterEntries = 0
				cfg.Stride = core.NoStrideDetection
			case "filtered":
				cfg.Stride = core.NoStrideDetection
			}
			got := runGolden(t, name, cfg).StreamHitRate()
			if math.Abs(got-want[mi]) > goldenTolerance {
				t.Errorf("%s %s hit rate = %.1f, golden %.1f (±%.0f)",
					name, mode, got, want[mi], goldenTolerance)
			}
		}
	}
}

// runGolden traces one benchmark at exactly goldenScale.
func runGolden(t *testing.T, name string, cfg core.Config) core.Results {
	t.Helper()
	w, err := workload.New(name, table1Size(name))
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(sys, goldenScale); err != nil {
		t.Fatal(err)
	}
	return sys.Results()
}

// Regenerating: build a tiny main that runs each benchmark at
// goldenScale through the three configurations above and prints the
// map literal; paste it here. The characteristics tests
// (characteristics_test.go) justify the *shapes*; this table pins the
// values.
