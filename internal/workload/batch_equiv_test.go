package workload_test

// Batched-path equivalence: the batched hot path (Machine access
// buffering -> System.AccessBatch) and the compact trace store must be
// invisible in the statistics. For every benchmark, three executions —
// scalar per-access delivery, direct batched delivery, and
// record-to-store-then-batched-replay — have to produce byte-identical
// serialized Results. This extends the determinism golden test from
// "same inputs, same outputs" to "same inputs, same outputs, on every
// delivery path".

import (
	"bytes"
	"encoding/json"
	"testing"

	"streamsim/internal/core"
	"streamsim/internal/mem"
	"streamsim/internal/trace"
	"streamsim/internal/workload"
)

const equivScale = 0.05

// scalarOnly hides System.AccessBatch so the Machine takes the
// per-access path — the pre-batching behaviour.
type scalarOnly struct{ sys *core.System }

func (s scalarOnly) Access(a mem.Access)      { s.sys.Access(a) }
func (s scalarOnly) AddInstructions(n uint64) { s.sys.AddInstructions(n) }

// storeRec records into a trace.Store, the experiments recording path.
type storeRec struct {
	store *trace.Store
	insts uint64
}

func (r *storeRec) Access(a mem.Access)           { r.store.Append(a) }
func (r *storeRec) AccessBatch(accs []mem.Access) { r.store.AppendBatch(accs) }
func (r *storeRec) AddInstructions(n uint64)      { r.insts += n }

func resultsJSON(t *testing.T, sys *core.System) []byte {
	t.Helper()
	out, err := json.Marshal(sys.Results())
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func newSystem(t *testing.T) *core.System {
	t.Helper()
	sys, err := core.New(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestBatchedReplayMatchesScalar(t *testing.T) {
	for _, name := range workload.Names() {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			w, err := workload.New(name, workload.SizeSmall)
			if err != nil {
				t.Fatal(err)
			}

			scalarSys := newSystem(t)
			if err := w.Run(scalarOnly{scalarSys}, equivScale); err != nil {
				t.Fatal(err)
			}
			scalar := resultsJSON(t, scalarSys)

			batchSys := newSystem(t)
			if err := w.Run(batchSys, equivScale); err != nil {
				t.Fatal(err)
			}
			if batched := resultsJSON(t, batchSys); !bytes.Equal(scalar, batched) {
				t.Errorf("batched delivery diverged from scalar:\nscalar: %s\nbatched: %s", scalar, batched)
			}

			rec := &storeRec{store: trace.NewStore(int(workload.EstimateRefs(name, workload.SizeSmall, equivScale)))}
			if err := w.Run(rec, equivScale); err != nil {
				t.Fatal(err)
			}
			if err := rec.store.Err(); err != nil {
				t.Fatal(err)
			}
			replaySys := newSystem(t)
			buf := make([]mem.Access, trace.ReplayBatchLen)
			it := rec.store.Iter()
			for n := it.Next(buf); n > 0; n = it.Next(buf) {
				replaySys.AccessBatch(buf[:n])
			}
			replaySys.AddInstructions(rec.insts)
			if replayed := resultsJSON(t, replaySys); !bytes.Equal(scalar, replayed) {
				t.Errorf("store replay diverged from scalar:\nscalar: %s\nreplayed: %s", scalar, replayed)
			}
		})
	}
}
