package workload

import (
	"context"
	"errors"
	"testing"

	"streamsim/internal/mem"
)

// tallySink counts batched references and does nothing else.
type tallySink struct {
	refs  int
	insts uint64
}

func (s *tallySink) Access(mem.Access)             { s.refs++ }
func (s *tallySink) AccessBatch(accs []mem.Access) { s.refs += len(accs) }
func (s *tallySink) AddInstructions(n uint64)      { s.insts += n }

// scalarSink is a Sink without the batch extension, to exercise the
// scalar cancellation path.
type scalarSink struct{ refs int }

func (s *scalarSink) Access(mem.Access)        { s.refs++ }
func (s *scalarSink) AddInstructions(n uint64) {}

func TestRunContextPreCancelled(t *testing.T) {
	w, err := New("mgrid", SizeSmall)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sink := &tallySink{}
	if err := w.RunContext(ctx, sink, 1.0); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext on cancelled ctx = %v, want context.Canceled", err)
	}
	// The machine polls once per accBufLen emits, so at most a couple
	// of batches escape before the kernel unwinds.
	if sink.refs > 4*accBufLen {
		t.Errorf("cancelled run emitted %d refs, want <= %d", sink.refs, 4*accBufLen)
	}
}

func TestRunContextCancelMidRun(t *testing.T) {
	w, err := New("mgrid", SizeSmall)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const stopAfter = 50 * accBufLen
	sink := &tallySink{}
	cancelling := &cancelAfterSink{tally: sink, stopAfter: stopAfter, cancel: cancel}
	if err := w.RunContext(ctx, cancelling, 1.0); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext = %v, want context.Canceled", err)
	}
	// Cancellation lands within one batch of the triggering reference.
	if sink.refs > stopAfter+2*accBufLen {
		t.Errorf("run emitted %d refs after cancel at %d, want <= %d",
			sink.refs, stopAfter, stopAfter+2*accBufLen)
	}
	if sink.refs < stopAfter {
		t.Errorf("run emitted %d refs, want >= %d (cancel should not fire early)", sink.refs, stopAfter)
	}
}

// cancelAfterSink cancels its context once stopAfter references have
// been delivered.
type cancelAfterSink struct {
	tally     *tallySink
	stopAfter int
	cancel    context.CancelFunc
}

func (s *cancelAfterSink) Access(a mem.Access) {
	s.tally.Access(a)
	if s.tally.refs >= s.stopAfter {
		s.cancel()
	}
}

func (s *cancelAfterSink) AccessBatch(accs []mem.Access) {
	s.tally.AccessBatch(accs)
	if s.tally.refs >= s.stopAfter {
		s.cancel()
	}
}

func (s *cancelAfterSink) AddInstructions(n uint64) { s.tally.AddInstructions(n) }

func TestRunContextScalarPathCancels(t *testing.T) {
	w, err := New("mgrid", SizeSmall)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sink := &scalarSink{}
	if err := w.RunContext(ctx, sink, 1.0); !errors.Is(err, context.Canceled) {
		t.Fatalf("scalar RunContext = %v, want context.Canceled", err)
	}
	if sink.refs > 4*accBufLen {
		t.Errorf("cancelled scalar run emitted %d refs, want <= %d", sink.refs, 4*accBufLen)
	}
}

func TestRunContextMatchesRun(t *testing.T) {
	for _, name := range []string{"mgrid", "is"} {
		w, err := New(name, SizeSmall)
		if err != nil {
			t.Fatal(err)
		}
		plain := &tallySink{}
		if err := w.Run(plain, 0.05); err != nil {
			t.Fatal(err)
		}
		ctx := &tallySink{}
		if err := w.RunContext(context.Background(), ctx, 0.05); err != nil {
			t.Fatal(err)
		}
		if plain.refs != ctx.refs || plain.insts != ctx.insts {
			t.Errorf("%s: RunContext (%d refs, %d insts) differs from Run (%d refs, %d insts)",
				name, ctx.refs, ctx.insts, plain.refs, plain.insts)
		}
	}
}

// TestCancelCheckAllocFree is the alloc gate for the context check:
// a machine generating references under a live, cancellable context
// must stay allocation-free on the emit hot path.
//
//simlint:hotpath (*streamsim/internal/workload.Machine).SeqLoad
func TestCancelCheckAllocFree(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sink := &tallySink{}
	m := newMachine(sink, "allocgate")
	m.ctx, m.done = ctx, ctx.Done()
	base := m.Alloc(1 << 20)
	avg := testing.AllocsPerRun(100, func() {
		// 8 batch boundaries (and cancel polls) per run.
		m.SeqLoad(base, 8*accBufLen, 8, 0)
	})
	if avg != 0 {
		t.Fatalf("AllocsPerRun with context check = %v, want 0", avg)
	}
}
