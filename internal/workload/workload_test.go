package workload

import (
	"testing"

	"streamsim/internal/mem"
)

// countSink tallies what a workload emits.
type countSink struct {
	reads, writes, fetches uint64
	insts                  uint64
	minAddr, maxAddr       mem.Addr
}

func (c *countSink) Access(a mem.Access) {
	switch a.Kind {
	case mem.Read:
		c.reads++
	case mem.Write:
		c.writes++
	case mem.IFetch:
		c.fetches++
	}
	if c.minAddr == 0 || a.Addr < c.minAddr {
		c.minAddr = a.Addr
	}
	if a.Addr > c.maxAddr {
		c.maxAddr = a.Addr
	}
}

func (c *countSink) AddInstructions(n uint64) { c.insts += n }

func TestNamesComplete(t *testing.T) {
	names := Names()
	if len(names) != 15 {
		t.Fatalf("Names() has %d entries, want 15", len(names))
	}
	if len(NASNames()) != 8 {
		t.Errorf("NASNames() has %d entries, want 8", len(NASNames()))
	}
	if len(PerfectNames()) != 7 {
		t.Errorf("PerfectNames() has %d entries, want 7", len(PerfectNames()))
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Errorf("duplicate benchmark %q", n)
		}
		seen[n] = true
		if _, err := New(n, SizeSmall); err != nil {
			t.Errorf("New(%q, small): %v", n, err)
		}
	}
}

func TestUnknownBenchmark(t *testing.T) {
	if _, err := New("nosuch", SizeSmall); err == nil {
		t.Error("unknown benchmark should be rejected")
	}
}

func TestGrowableSizes(t *testing.T) {
	grow := map[string]bool{}
	for _, n := range GrowableNames() {
		grow[n] = true
	}
	want := []string{"appbt", "applu", "appsp", "cgm", "mgrid"}
	if len(grow) != len(want) {
		t.Fatalf("GrowableNames() = %v, want %v", GrowableNames(), want)
	}
	for _, n := range want {
		if !grow[n] {
			t.Errorf("%s should be growable", n)
		}
	}
	for _, n := range Names() {
		_, err := New(n, SizeLarge)
		if grow[n] && err != nil {
			t.Errorf("New(%q, large): %v", n, err)
		}
		if !grow[n] && err == nil {
			t.Errorf("New(%q, large) should be rejected", n)
		}
	}
}

func TestSizeString(t *testing.T) {
	if SizeSmall.String() != "small" || SizeLarge.String() != "large" {
		t.Error("Size.String names wrong")
	}
}

func TestScaleValidation(t *testing.T) {
	w, err := New("embar", SizeSmall)
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []float64{0, -1, 1.5} {
		if err := w.Run(&countSink{}, bad); err == nil {
			t.Errorf("scale %v should be rejected", bad)
		}
	}
}

func TestEveryWorkloadEmits(t *testing.T) {
	for _, name := range Names() {
		w, err := New(name, SizeSmall)
		if err != nil {
			t.Fatal(err)
		}
		var c countSink
		if err := w.Run(&c, 0.02); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if c.reads == 0 {
			t.Errorf("%s emitted no loads", name)
		}
		if c.fetches == 0 {
			t.Errorf("%s emitted no instruction fetches", name)
		}
		if c.insts == 0 {
			t.Errorf("%s retired no instructions", name)
		}
		if c.insts < c.reads {
			t.Errorf("%s: %d instructions < %d loads (unrealistic)", name, c.insts, c.reads)
		}
		if w.DataBytes == 0 || w.Description == "" || w.Input == "" {
			t.Errorf("%s: incomplete metadata: %+v", name, w)
		}
	}
}

func TestDeterministicTraces(t *testing.T) {
	run := func() countSink {
		w, err := New("bdna", SizeSmall)
		if err != nil {
			t.Fatal(err)
		}
		var c countSink
		if err := w.Run(&c, 0.05); err != nil {
			t.Fatal(err)
		}
		return c
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("two runs differ: %+v vs %+v", a, b)
	}
}

func TestMachineAllocSkewed(t *testing.T) {
	m := newMachine(&countSink{}, "test")
	a := m.Alloc(64 << 10)
	b := m.Alloc(64 << 10)
	c := m.Alloc(64 << 10)
	if b <= a || c <= b {
		t.Fatal("allocations must ascend")
	}
	// The skew must break set alignment: gaps differ.
	if b-a == c-b {
		t.Error("allocation gaps identical; de-aliasing skew missing")
	}
	if a%64 != 0 || b%64 != 0 || c%64 != 0 {
		t.Error("allocations must stay block-aligned")
	}
}

func TestMachineInstEmitsFetches(t *testing.T) {
	var c countSink
	m := newMachine(&c, "test")
	// 16 instructions of 4 bytes = 64 bytes = one block crossed.
	m.Inst(16)
	if c.fetches != 1 {
		t.Errorf("fetches = %d, want 1 per block of code", c.fetches)
	}
	m.Inst(16 * 100)
	if c.fetches < 90 {
		t.Errorf("fetches = %d, want ~101", c.fetches)
	}
}

func TestMachineCodeWraps(t *testing.T) {
	var c countSink
	m := newMachine(&c, "test")
	m.SetCodeFootprint(256) // 4 blocks of code
	m.Inst(10000)           // loops many times
	if c.fetches == 0 {
		t.Fatal("no fetches emitted")
	}
	if c.maxAddr >= mem.Addr(codeSegBase+512) {
		t.Errorf("code fetch at %#x escaped the 256-byte footprint", c.maxAddr)
	}
}

func TestMachineInstructionBatching(t *testing.T) {
	var c countSink
	m := newMachine(&c, "test")
	m.Inst(5)
	if c.insts != 0 {
		t.Error("instruction counts should batch, not flush per call")
	}
	m.flush()
	if c.insts != 5 {
		t.Errorf("flushed %d instructions, want 5", c.insts)
	}
}

func TestToolkitStrideLoadStopsAtZero(t *testing.T) {
	var c countSink
	m := newMachine(&c, "test")
	m.StrideLoad(mem.Addr(128), 100, -64, 1)
	// 128, 64, 0 then the next address would be negative: stop.
	if c.reads != 3 {
		t.Errorf("reads = %d, want 3 (stop at address zero)", c.reads)
	}
}

func TestToolkitGatherScatter(t *testing.T) {
	var c countSink
	m := newMachine(&c, "test")
	idx := m.Alloc(1024)
	data := m.Alloc(1024)
	m.GatherLoad(idx, data, 10, 8, func(i int) int { return i * 2 }, 1)
	if c.reads != 20 { // index load + data load per element
		t.Errorf("reads = %d, want 20", c.reads)
	}
	m.ScatterStore(idx, data, 10, 8, func(i int) int { return i }, 1)
	if c.writes != 10 {
		t.Errorf("writes = %d, want 10", c.writes)
	}
}

func TestToolkitBlockRun(t *testing.T) {
	var c countSink
	m := newMachine(&c, "test")
	m.BlockRun(m.Alloc(4096), 200, 1)
	if c.reads != 25 { // 200 bytes / 8-byte touches
		t.Errorf("reads = %d, want 25", c.reads)
	}
}

func TestToolkitSeq(t *testing.T) {
	var c countSink
	m := newMachine(&c, "test")
	base := m.Alloc(4096)
	m.SeqLoad(base, 10, 8, 2)
	m.SeqStore(base, 5, 8, 2)
	if c.reads != 10 || c.writes != 5 {
		t.Errorf("reads/writes = %d/%d, want 10/5", c.reads, c.writes)
	}
	if c.insts != 0 {
		t.Error("insts should still be batched")
	}
	m.flush()
	if c.insts != 30 {
		t.Errorf("insts = %d, want 30", c.insts)
	}
}

func TestItersScaling(t *testing.T) {
	if got := iters(100, 0.5); got != 50 {
		t.Errorf("iters(100, 0.5) = %d, want 50", got)
	}
	if got := iters(2, 0.01); got != 1 {
		t.Errorf("iters floor = %d, want 1", got)
	}
}
