// Package workload generates the memory reference traces of the
// paper's fifteen benchmarks (eight NAS, seven PERFECT). The paper
// traced Fortran binaries with Shade; since those binaries and tracer
// are unavailable, each benchmark is modelled as a synthetic kernel
// that emits the same *kinds* of reference behaviour the program's
// inner loops produce — unit-stride array sweeps, constant large-stride
// walks (FFT butterflies, dimensional sweeps), scatter/gather
// indirection, short block-structured runs, and stencil neighbourhoods —
// at the data-set sizes of the paper's Table 1.
//
// What the prefetch hardware sees is only the address stream, so a
// model that reproduces the mixture of run lengths, stride values and
// irregularity reproduces the paper's stream buffer behaviour. Each
// benchmark notes, in its doc comment, which Table 1 / Table 3 /
// Figure 3 characteristics it is calibrated to.
package workload

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"streamsim/internal/mem"
)

// Sink consumes the generated reference stream. core.System satisfies
// it, as does trace.Writer.
type Sink interface {
	// Access presents one memory reference.
	Access(mem.Access)
	// AddInstructions reports n retired instructions (for MPI).
	AddInstructions(n uint64)
}

// BatchSink is a Sink that also accepts references in batches. When
// the sink implements it (core.System and trace.Writer do), the
// kernel machine buffers accBufLen references and delivers them with
// one call, amortizing interface dispatch across the batch. Relative
// order of accesses and instruction counts is preserved exactly: the
// access buffer is always drained before a count is forwarded.
type BatchSink interface {
	Sink
	AccessBatch(accs []mem.Access)
}

// accBufLen is the machine's access buffer size; 512 references keep
// the buffer within the host L1 while making dispatch cost negligible.
const accBufLen = 512

// Size selects the benchmark input scale. The paper's Table 4 grows
// five benchmarks to a second, larger input.
type Size uint8

// Input sizes.
const (
	// SizeSmall is the paper's default input (Table 1).
	SizeSmall Size = iota
	// SizeLarge is the grown input of Table 4.
	SizeLarge
)

// String names the size.
func (s Size) String() string {
	if s == SizeLarge {
		return "large"
	}
	return "small"
}

// Workload is one benchmark: metadata plus the kernel body.
type Workload struct {
	// Name is the paper's benchmark name (e.g. "mgrid").
	Name string
	// Suite is "NAS" or "PERFECT".
	Suite string
	// Description is the Table 1 one-liner.
	Description string
	// Input describes the data-set configuration in Table 1 terms.
	Input string
	// DataBytes is the resident data-set size.
	DataBytes uint64
	// run is the kernel body. scale in (0, 1] shrinks the iteration
	// count for quick runs without changing the data-set size.
	run func(m *Machine, scale float64)
}

// Run drives the kernel, sending its references to sink. scale in
// (0, 1] trades trace length for fidelity; 1 is the experiment default.
func (w *Workload) Run(sink Sink, scale float64) error {
	return w.RunContext(context.Background(), sink, scale)
}

// RunContext is Run with cancellation: the machine polls ctx once per
// delivered batch (accBufLen references), never per reference, so a
// cancelled kernel stops within one batch boundary at zero cost to the
// hot path. On cancellation the sink has received a prefix of the
// trace and the returned error is ctx.Err().
func (w *Workload) RunContext(ctx context.Context, sink Sink, scale float64) (err error) {
	if scale <= 0 || scale > 1 {
		return fmt.Errorf("workload %s: scale %v outside (0, 1]", w.Name, scale)
	}
	m := newMachine(sink, w.Name)
	m.ctx, m.done = ctx, ctx.Done()
	// Kernel bodies are plain loops with no error returns; cancellation
	// unwinds them with a typed panic that only RunContext throws and
	// only this recover catches.
	defer func() {
		if r := recover(); r != nil {
			cp, ok := r.(cancelUnwind)
			if !ok {
				panic(r)
			}
			err = cp.err
		}
	}()
	w.run(m, scale)
	m.flush()
	return nil
}

// cancelUnwind carries the context error out of a cancelled kernel.
type cancelUnwind struct{ err error }

// iters scales an iteration count, keeping at least one iteration.
func iters(n int, scale float64) int {
	v := int(float64(n) * scale)
	if v < 1 {
		v = 1
	}
	return v
}

// Machine is the kernel execution context: a bump allocator for the
// benchmark's address space, a deterministic RNG, an instruction
// counter that also synthesizes the (block-granularity) instruction
// fetch stream, and load/store emission helpers.
type Machine struct {
	sink   Sink
	batch  BatchSink    // sink, when it supports batching; else nil
	accBuf []mem.Access // pending references for the batch path
	rng    *rand.Rand

	ctx        context.Context // nil outside RunContext
	done       <-chan struct{} // ctx.Done(), captured once; nil = never cancelled
	scalarRefs int             // scalar-path emits since the last cancel poll

	heap   mem.Addr // bump allocator cursor
	allocs int      // allocation count, drives the de-aliasing skew

	codeBase  mem.Addr
	codeBytes mem.Addr
	codePC    mem.Addr
	pendInsts uint64
}

// Loop models the backward branch of an inner loop: each call resets
// the synthetic PC to the loop's code window (id selects a distinct
// 512-byte window per loop nest). Benchmarks call it once per
// iteration of each reference-issuing loop, which keeps per-site load
// and store PCs stable across iterations — the property PC-indexed
// prefetchers (internal/prefetch's RPT) rely on, and which real loops
// have by construction.
func (m *Machine) Loop(id int) {
	const window = 512
	base := m.codeBase
	if m.codeBytes > window {
		base += mem.Addr(id*window) % (m.codeBytes - window)
	}
	m.codePC = base
	// The taken backward branch re-fetches the loop head (an L1I hit
	// in steady state, as the paper's near-zero I-miss rates reflect).
	m.emit(mem.Access{Addr: base, Kind: mem.IFetch})
}

// Instruction-stream modelling: 4 bytes per instruction, one IFetch
// emitted per 64-byte block boundary crossed, code footprint looping
// cyclically (small loops dominate scientific codes, so the I-stream
// hits the 64 KB L1I almost always — the paper's observation that
// partitioned instruction streams were not beneficial).
const (
	instBytes       = 4
	defaultCodeSize = 8 << 10 // 8 KB of hot loop code
	heapBase        = 1 << 24 // data segment starts at 16 MB
	codeSegBase     = 1 << 20 // code segment at 1 MB
	allocAlign      = 4096    // page-align each array
)

// newMachine seeds the RNG from the workload name so runs are
// deterministic per benchmark.
func newMachine(sink Sink, name string) *Machine {
	var seed int64
	for _, c := range name {
		seed = seed*131 + int64(c)
	}
	m := &Machine{
		sink:      sink,
		rng:       rand.New(rand.NewSource(seed)),
		heap:      heapBase,
		codeBase:  codeSegBase,
		codeBytes: defaultCodeSize,
		codePC:    codeSegBase,
	}
	if bs, ok := sink.(BatchSink); ok {
		m.batch = bs
		m.accBuf = make([]mem.Access, 0, accBufLen)
	}
	return m
}

// emit queues one reference, delivering the pending batch when full
// (or immediately on the scalar path). Cancellation is polled once per
// accBufLen references on either path.
func (m *Machine) emit(a mem.Access) {
	if m.batch == nil {
		m.sink.Access(a)
		m.scalarRefs++
		if m.scalarRefs >= accBufLen {
			m.scalarRefs = 0
			m.checkCancel()
		}
		return
	}
	m.accBuf = append(m.accBuf, a)
	if len(m.accBuf) == accBufLen {
		m.batch.AccessBatch(m.accBuf)
		m.accBuf = m.accBuf[:0]
		m.checkCancel()
	}
}

// checkCancel polls the cancellation signal; a non-blocking receive on
// a (possibly nil) channel, so the per-batch cost is a few nanoseconds
// and the per-reference cost is zero.
//
//simlint:hotpath
func (m *Machine) checkCancel() {
	select {
	case <-m.done:
		panic(cancelUnwind{m.ctx.Err()})
	default:
	}
}

// Alloc reserves bytes of the data segment and returns the base
// address. Consecutive allocations are skewed by a growing, non-
// power-of-two pad so that simultaneously-walked arrays do not alias
// into the same cache sets (real Fortran COMMON-block layouts have the
// same property; perfectly set-aligned arrays would thrash even a
// 4-way cache).
func (m *Machine) Alloc(bytes uint64) mem.Addr {
	base := m.heap
	m.heap += mem.Addr((bytes + allocAlign - 1) &^ (allocAlign - 1))
	m.allocs++
	m.heap += mem.Addr(m.allocs) * 1088 // de-aliasing skew, 64B-aligned
	return base
}

// SetCodeFootprint sizes the hot code loop (default 8 KB).
func (m *Machine) SetCodeFootprint(bytes uint64) {
	if bytes < 64 {
		bytes = 64
	}
	m.codeBytes = mem.Addr(bytes &^ 63)
	m.codePC = m.codeBase
}

// Inst retires n instructions, advancing the synthetic PC and emitting
// block-granularity instruction fetches.
func (m *Machine) Inst(n int) {
	if n <= 0 {
		return
	}
	m.pendInsts += uint64(n)
	oldBlk := m.codePC >> 6
	m.codePC += mem.Addr(n * instBytes)
	for blk := oldBlk + 1; blk <= m.codePC>>6; blk++ {
		pc := blk << 6
		if pc >= m.codeBase+m.codeBytes {
			m.codePC = m.codeBase + (m.codePC - (m.codeBase + m.codeBytes))
			pc = m.codeBase
			blk = pc >> 6
			m.emit(mem.Access{Addr: pc, Kind: mem.IFetch})
			break
		}
		m.emit(mem.Access{Addr: pc, Kind: mem.IFetch})
	}
	if m.pendInsts >= 1<<16 {
		m.flush()
	}
}

// flush drains the access buffer and forwards batched instruction
// counts to the sink, in that order, so the sink sees every access
// that preceded the counts.
func (m *Machine) flush() {
	if len(m.accBuf) > 0 {
		m.batch.AccessBatch(m.accBuf)
		m.accBuf = m.accBuf[:0]
	}
	if m.pendInsts > 0 {
		m.sink.AddInstructions(m.pendInsts)
		m.pendInsts = 0
	}
}

// Load emits a data load, stamped with the current synthetic PC so
// PC-indexed prefetchers (internal/prefetch's RPT) can correlate it
// with its issuing instruction site. The load is itself an instruction
// slot: the PC advances past it, so the several references of one loop
// body occupy distinct, iteration-stable PCs.
func (m *Machine) Load(a mem.Addr) {
	m.emit(mem.Access{Addr: a, PC: m.codePC, Kind: mem.Read})
	m.codePC += instBytes
}

// Store emits a data store (see Load for PC semantics).
func (m *Machine) Store(a mem.Addr) {
	m.emit(mem.Access{Addr: a, PC: m.codePC, Kind: mem.Write})
	m.codePC += instBytes
}

// Rand returns the machine's deterministic RNG.
func (m *Machine) Rand() *rand.Rand { return m.rng }

// --- kernel toolkit -------------------------------------------------

// SeqLoad walks n elements of elemBytes each from base, loading each,
// with instsPerRef instructions of compute interleaved per reference.
func (m *Machine) SeqLoad(base mem.Addr, n int, elemBytes uint, instsPerRef int) {
	for i := 0; i < n; i++ {
		m.Load(base + mem.Addr(i)*mem.Addr(elemBytes))
		m.Inst(instsPerRef)
	}
}

// SeqStore is SeqLoad for stores.
func (m *Machine) SeqStore(base mem.Addr, n int, elemBytes uint, instsPerRef int) {
	for i := 0; i < n; i++ {
		m.Store(base + mem.Addr(i)*mem.Addr(elemBytes))
		m.Inst(instsPerRef)
	}
}

// StrideLoad walks n references from base with a constant byte stride.
func (m *Machine) StrideLoad(base mem.Addr, n int, strideBytes int64, instsPerRef int) {
	a := int64(base)
	for i := 0; i < n; i++ {
		if a < 0 {
			return
		}
		m.Load(mem.Addr(a))
		m.Inst(instsPerRef)
		a += strideBytes
	}
}

// StrideStore is StrideLoad for stores.
func (m *Machine) StrideStore(base mem.Addr, n int, strideBytes int64, instsPerRef int) {
	a := int64(base)
	for i := 0; i < n; i++ {
		if a < 0 {
			return
		}
		m.Store(mem.Addr(a))
		m.Inst(instsPerRef)
		a += strideBytes
	}
}

// GatherLoad performs n indirect loads: load idx from idxBase
// sequentially, then load data[idx*elemBytes]. idxOf supplies the
// index value for the i-th gather (the model's stand-in for the index
// array contents).
func (m *Machine) GatherLoad(idxBase, dataBase mem.Addr, n int, elemBytes uint,
	idxOf func(i int) int, instsPerRef int) {
	for i := 0; i < n; i++ {
		m.Load(idxBase + mem.Addr(i)*4) // index array is int32
		m.Load(dataBase + mem.Addr(idxOf(i))*mem.Addr(elemBytes))
		m.Inst(instsPerRef)
	}
}

// ScatterStore is GatherLoad with the data reference a store.
func (m *Machine) ScatterStore(idxBase, dataBase mem.Addr, n int, elemBytes uint,
	idxOf func(i int) int, instsPerRef int) {
	for i := 0; i < n; i++ {
		m.Load(idxBase + mem.Addr(i)*4)
		m.Store(dataBase + mem.Addr(idxOf(i))*mem.Addr(elemBytes))
		m.Inst(instsPerRef)
	}
}

// BlockRun loads a short contiguous run of bytes (a dense sub-block,
// e.g. one 5x5 Jacobian) starting at base.
func (m *Machine) BlockRun(base mem.Addr, bytes uint, instsPerRef int) {
	for off := mem.Addr(0); off < mem.Addr(bytes); off += 8 {
		m.Load(base + off)
		m.Inst(instsPerRef)
	}
}

// --- registry --------------------------------------------------------

// New returns the named benchmark at the given input size. Names match
// the paper's Table 1. Only the five Table 4 benchmarks accept
// SizeLarge; the rest reject it.
func New(name string, size Size) (*Workload, error) {
	ctor, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("workload: unknown benchmark %q", name)
	}
	w, err := ctor(size)
	if err != nil {
		return nil, err
	}
	return w, nil
}

// Names returns every benchmark name in the paper's Table 1 order.
func Names() []string {
	out := make([]string, len(order))
	copy(out, order)
	return out
}

// NASNames returns the eight NAS benchmarks in Table 1 order.
func NASNames() []string { return append([]string(nil), order[:8]...) }

// PerfectNames returns the seven PERFECT benchmarks in Table 1 order.
func PerfectNames() []string { return append([]string(nil), order[8:]...) }

// GrowableNames returns the Table 4 benchmarks that accept SizeLarge.
func GrowableNames() []string {
	var out []string
	for _, n := range order {
		if growable[n] {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

// order is the paper's Table 1 listing.
var order = []string{
	"embar", "mgrid", "cgm", "fftpde", "is", "appsp", "appbt", "applu",
	"spec77", "adm", "bdna", "dyfesm", "mdg", "qcd", "trfd",
}

// growable marks the benchmarks Table 4 grows.
var growable = map[string]bool{
	"appsp": true, "appbt": true, "applu": true, "cgm": true, "mgrid": true,
}

// refCounts holds the measured reference count (data accesses plus
// instruction fetches) of each benchmark at scale 1, small and large
// inputs; zero marks an undefined large input. Iteration counts scale
// linearly with the scale knob, so EstimateRefs extrapolates from
// these. The numbers only size preallocations — a drifted estimate
// costs one slice regrow, never correctness — so they do not need
// re-measuring every time a kernel is retuned.
var refCounts = map[string][2]uint64{
	"embar":  {6029312, 0},
	"mgrid":  {2252620, 17162060},
	"cgm":    {6535200, 8265600},
	"fftpde": {11010048, 0},
	"is":     {5959840, 0},
	"appsp":  {1347840, 10782720},
	"appbt":  {4478976, 35831808},
	"applu":  {1632960, 13374720},
	"spec77": {7895040, 0},
	"adm":    {4900080, 0},
	"bdna":   {5898240, 0},
	"dyfesm": {9686400, 0},
	"mdg":    {13801830, 0},
	"qcd":    {5256576, 0},
	"trfd":   {10500000, 0},
}

// EstimateRefs estimates how many references the named benchmark
// emits at the given input size and scale — the preallocation hint
// for trace recording. Unknown benchmarks (or sizes) return zero,
// which callers treat as "no hint".
func EstimateRefs(name string, size Size, scale float64) uint64 {
	counts, ok := refCounts[name]
	if !ok {
		return 0
	}
	n := counts[0]
	if size == SizeLarge {
		n = counts[1]
	}
	if scale < 1 {
		// Kernels clamp each scaled loop to at least one iteration, so
		// tiny scales undershoot a pure linear model; the +1% slack and
		// the callers' tolerance for a regrow cover that.
		n = uint64(float64(n) * scale * 1.01)
	}
	return n
}

// registry maps names to constructors; populated by nas.go/perfect.go.
var registry = map[string]func(Size) (*Workload, error){}

// register adds a benchmark constructor; called from init functions.
func register(name string, ctor func(Size) (*Workload, error)) {
	registry[name] = ctor
}

// sizeOnlySmall rejects SizeLarge for non-Table 4 benchmarks.
func sizeOnlySmall(name string, size Size) error {
	if size != SizeSmall {
		return fmt.Errorf("workload %s: only the small input is defined (Table 4 grows appsp, appbt, applu, cgm, mgrid)", name)
	}
	return nil
}
