package workload_test

import (
	"fmt"

	"streamsim/internal/core"
	"streamsim/internal/mem"
	"streamsim/internal/workload"
)

// Example traces one of the paper's benchmarks through the default
// memory system.
func Example() {
	w, err := workload.New("embar", workload.SizeSmall)
	if err != nil {
		panic(err)
	}
	sys, err := core.New(core.DefaultConfig())
	if err != nil {
		panic(err)
	}
	if err := w.Run(sys, 0.1); err != nil {
		panic(err)
	}
	fmt.Printf("%s (%s): stream hit rate %.0f%%\n",
		w.Name, w.Suite, sys.Results().StreamHitRate())
	// Output:
	// embar (NAS): stream hit rate 99%
}

// ExampleCustom builds a user-defined reference mix: two-thirds
// sequential, one-third random.
func ExampleCustom() {
	w, err := workload.Custom(workload.CustomParams{
		Name:            "mymix",
		SequentialShare: 2,
		RandomShare:     1,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(w.Input)
	// Output:
	// seq 67% / stride 0% / random 33% / resident 0%
}

// ExampleWorkload_Run shows the Sink contract: anything that accepts
// accesses and instruction counts can consume a benchmark.
func ExampleWorkload_Run() {
	w, err := workload.New("is", workload.SizeSmall)
	if err != nil {
		panic(err)
	}
	counter := &countingSink{}
	if err := w.Run(counter, 0.02); err != nil {
		panic(err)
	}
	fmt.Println("emitted accesses:", counter.n > 0)
	// Output:
	// emitted accesses: true
}

type countingSink struct{ n int }

func (c *countingSink) Access(mem.Access)      { c.n++ }
func (c *countingSink) AddInstructions(uint64) {}
