package workload_test

import (
	"testing"

	"streamsim/internal/core"
	"streamsim/internal/workload"
)

func TestCustomValidation(t *testing.T) {
	if _, err := workload.Custom(workload.CustomParams{}); err == nil {
		t.Error("all-zero shares should be rejected")
	}
	if _, err := workload.Custom(workload.CustomParams{SequentialShare: -1, RandomShare: 2}); err == nil {
		t.Error("negative share should be rejected")
	}
	if _, err := workload.Custom(workload.CustomParams{SequentialShare: 1, WriteFraction: 2}); err == nil {
		t.Error("write fraction > 1 should be rejected")
	}
	if _, err := workload.Custom(workload.CustomParams{SequentialShare: 1, StrideBytes: -64}); err == nil {
		t.Error("negative stride should be rejected")
	}
}

func TestCustomDefaults(t *testing.T) {
	w, err := workload.Custom(workload.CustomParams{SequentialShare: 1})
	if err != nil {
		t.Fatal(err)
	}
	if w.Name != "custom" || w.Suite != "custom" {
		t.Errorf("defaults wrong: %q/%q", w.Name, w.Suite)
	}
	if w.DataBytes != 8<<20 {
		t.Errorf("default data bytes = %d", w.DataBytes)
	}
}

// runCustom drives a custom mix through the paper's default system.
func runCustom(t *testing.T, p workload.CustomParams) core.Results {
	t.Helper()
	w, err := workload.Custom(p)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.New(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(sys, 0.2); err != nil {
		t.Fatal(err)
	}
	return sys.Results()
}

func TestCustomPureSequentialStreams(t *testing.T) {
	r := runCustom(t, workload.CustomParams{SequentialShare: 1})
	if hr := r.StreamHitRate(); hr < 95 {
		t.Errorf("pure sequential mix hit rate = %.1f, want > 95", hr)
	}
}

func TestCustomPureRandomDoesNot(t *testing.T) {
	r := runCustom(t, workload.CustomParams{RandomShare: 1})
	if hr := r.StreamHitRate(); hr > 20 {
		t.Errorf("pure random mix hit rate = %.1f, want ~0", hr)
	}
}

func TestCustomStrideNeedsDetector(t *testing.T) {
	p := workload.CustomParams{StrideShare: 1, StrideBytes: 8192}
	with := runCustom(t, p)
	if hr := with.StreamHitRate(); hr < 90 {
		t.Errorf("strided mix with czone detection hit rate = %.1f, want > 90", hr)
	}
	w, err := workload.Custom(p)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.Stride = core.NoStrideDetection
	sys, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(sys, 0.2); err != nil {
		t.Fatal(err)
	}
	if hr := sys.Results().StreamHitRate(); hr > 10 {
		t.Errorf("strided mix without detection hit rate = %.1f, want ~0", hr)
	}
}

func TestCustomResidentMixHitsL1(t *testing.T) {
	r := runCustom(t, workload.CustomParams{ResidentShare: 1})
	if mr := r.DataMissRate(); mr > 1 {
		t.Errorf("resident mix miss rate = %.2f%%, want ~0", mr)
	}
}

func TestCustomWriteFraction(t *testing.T) {
	r := runCustom(t, workload.CustomParams{SequentialShare: 1, WriteFraction: 0.5})
	total := r.L1D.Accesses
	if total == 0 {
		t.Fatal("no accesses")
	}
	// Write misses roughly half of misses.
	frac := float64(r.L1D.WriteMisses) / float64(r.L1D.Misses)
	if frac < 0.35 || frac > 0.65 {
		t.Errorf("write-miss fraction = %.2f, want ~0.5", frac)
	}
}
