// PERFECT benchmark models (Table 1, last seven rows). These codes
// have smaller data sets and much lower miss rates than the NAS
// kernels; their misses are dominated by gathers, scatters and short
// block-structured runs, which is why several of them sit in the lower
// hit-rate band of Figure 3.
package workload

import "streamsim/internal/mem"

func init() {
	register("spec77", newSpec77)
	register("adm", newAdm)
	register("bdna", newBdna)
	register("dyfesm", newDyfesm)
	register("mdg", newMdg)
	register("qcd", newQcd)
	register("trfd", newTrfd)
}

// newSpec77 models the spectral weather code: long Legendre-transform
// dot products (sequential sweeps over ~1.3 MB of coefficients)
// interleaved with latitude FFTs at a moderate constant stride, plus a
// cache-resident physics workspace. Calibration: data 1.3 MB, miss
// rate 0.50%, MPI 0.15%, hit rate ~73%, hits ~22% short / 64% >20.
func newSpec77(size Size) (*Workload, error) {
	if err := sizeOnlySmall("spec77", size); err != nil {
		return nil, err
	}
	const coeffs = 96 << 10 // 768 KB of spectral coefficients
	const gridPts = 64 << 10
	return &Workload{
		Name: "spec77", Suite: "PERFECT",
		Description: "Weather simulation (spectral)",
		Input:       "720 time steps",
		DataBytes:   coeffs*dbl + gridPts*dbl,
		run: func(m *Machine, scale float64) {
			spec := m.Alloc(coeffs * dbl)
			grid := m.Alloc(gridPts * dbl)
			work := m.Alloc(8 << 10) // physics workspace: resident
			rng := m.Rand()
			steps := iters(10, scale)
			const lat = 128 // points per latitude line
			for t := 0; t < steps; t++ {
				// Legendre transform: stream the coefficient array
				// with resident associated-polynomial compute.
				for i := 0; i < coeffs; i++ {
					m.Loop(0)
					m.Load(spec + mem.Addr(i*dbl))
					m.Load(work + mem.Addr((i%512)*8))
					m.Load(work + mem.Addr(((i+128)%512)*8))
					m.Inst(14)
				}
				// Latitude FFTs: each line is contiguous, so the
				// butterflies stream unit stride line by line.
				for line := 0; line < gridPts/lat; line++ {
					base := grid + mem.Addr(line*lat*dbl)
					for i := 0; i < lat; i++ {
						m.Loop(1)
						m.Load(base + mem.Addr(i*dbl))
						m.Load(work + mem.Addr((i%512)*8))
						m.Store(base + mem.Addr(i*dbl))
						m.Inst(12)
					}
				}
				// Meridional derivatives: a modest strided component
				// (stride lat*dbl = 1 KB) over one field.
				for col := 0; col < lat; col += 64 {
					for i := 0; i < gridPts/lat; i++ {
						m.Loop(2)
						m.Load(grid + mem.Addr((i*lat+col)*dbl))
						m.Inst(10)
					}
				}
				// Grid-point physics: resident workspace churn with
				// occasional table lookups scattered over the spectral
				// array (surface-type and latitude-band tables).
				for i := 0; i < 16<<10; i++ {
					m.Loop(3)
					m.Load(work + mem.Addr((i%1024)*8))
					m.Inst(13)
					if i%32 == 0 {
						m.Load(spec + mem.Addr(rng.Intn(coeffs)*dbl))
						m.Inst(5)
					}
				}
			}
		},
	}, nil
}

// newAdm models the air-pollution code: almost all references hit a
// resident working set (miss rate 0.04%, MPI ~0), and the rare misses
// are array-indirection gathers scattered across a ~600 KB field —
// exactly the isolated references streams cannot help with, putting
// adm at the bottom of Figure 3 (~25-30%).
func newAdm(size Size) (*Workload, error) {
	if err := sizeOnlySmall("adm", size); err != nil {
		return nil, err
	}
	const fieldElems = 72 << 10 // ~576 KB pollutant field
	return &Workload{
		Name: "adm", Suite: "PERFECT",
		Description: "Air pollution (implicit transport)",
		Input:       "64 x 1 x 16 grid, 720 time steps",
		DataBytes:   fieldElems * dbl,
		run: func(m *Machine, scale float64) {
			field := m.Alloc(fieldElems * dbl)
			work := m.Alloc(16 << 10) // resident solver workspace
			rng := m.Rand()
			steps := iters(40, scale)
			for t := 0; t < steps; t++ {
				for i := 0; i < 60000; i++ {
					m.Loop(0)
					// Dominant resident compute...
					m.Load(work + mem.Addr((i%2048)*8))
					m.Inst(14)
					// ...with sparse scattered gathers into the field.
					if i%48 == 0 {
						g := rng.Intn(fieldElems - 32)
						m.Load(field + mem.Addr(g*dbl))
						m.Inst(6)
						// A quarter of the gathers interpolate a short
						// neighbourhood (a 3-block run).
						if i%192 == 0 {
							m.Load(field + mem.Addr(g*dbl) + 64)
							m.Load(field + mem.Addr(g*dbl) + 128)
							m.Load(field + mem.Addr(g*dbl) + 192)
							m.Inst(12)
						}
					}
				}
			}
		},
	}, nil
}

// newBdna models the nucleic-acid MD code: neighbour-list force loops
// that gather ~24-byte coordinate records from all over a ~2 MB
// position/force arena — very short stream lives. This is the paper's
// EB worst case (150% unfiltered): every isolated gather allocates a
// stream whose prefetches are flushed. Calibration: data 2.1 MB, miss
// rate 1.39%, MPI 0.42%, hit rate ~55-60%, hits 36% short / 33% >20.
func newBdna(size Size) (*Workload, error) {
	if err := sizeOnlySmall("bdna", size); err != nil {
		return nil, err
	}
	const atoms = 40 << 10 // 40K atom records
	const rec = 48         // position + velocity + force per atom
	return &Workload{
		Name: "bdna", Suite: "PERFECT",
		Description: "Nucleic acid simulation (molecular dynamics)",
		Input:       "500 molecules, 20 counter ions",
		DataBytes:   atoms * rec,
		run: func(m *Machine, scale float64) {
			arena := m.Alloc(atoms * rec)
			nbr := m.Alloc(atoms * 4)
			work := m.Alloc(4 << 10) // potential tables: resident
			rng := m.Rand()
			steps := iters(6, scale)
			for t := 0; t < steps; t++ {
				// Force loop: walk atoms in order (their records and
				// the neighbour-index list stream sequentially), with
				// a couple of scattered partner gathers per atom.
				// Verlet-list locality makes ~40% of partners land
				// near the current atom (often cache-resident).
				for i := 0; i < atoms; i++ {
					m.Loop(0)
					m.Load(arena + mem.Addr(i*rec))
					m.Load(arena + mem.Addr(i*rec) + 16)
					m.Load(nbr + mem.Addr(i*4))
					// Pair-potential evaluation from resident tables.
					for k := 0; k < 8; k++ {
						m.Load(work + mem.Addr(((i+k*67)%512)*8))
						m.Inst(9)
					}
					var j int
					if rng.Intn(20) < 11 {
						j = i - 64 + rng.Intn(128) // local partner
						if j < 0 || j >= atoms {
							j = i
						}
					} else {
						j = rng.Intn(atoms) // far partner
					}
					m.Load(arena + mem.Addr(j*rec))
					m.Load(arena + mem.Addr(j*rec) + 16)
					m.Store(arena + mem.Addr(i*rec) + 32)
					m.Inst(26)
				}
				// Bonded-force and integration sweeps: the long
				// sequential component (33% of bdna's hits are from
				// streams longer than 20 in Table 3).
				for i := 0; i < atoms; i++ {
					m.Loop(1)
					m.Load(arena + mem.Addr(i*rec) + 32)
					m.Store(arena + mem.Addr(i*rec) + 40)
					m.Inst(12)
				}
			}
		},
	}, nil
}

// newDyfesm models the structural-dynamics FEM code: a ~100 KB model
// accessed through element-to-node indirection. Nearly everything is
// resident (miss rate 0.01%); the trickle of misses is scattered
// gathers, so streams rarely help (bottom band of Figure 3 with adm).
func newDyfesm(size Size) (*Workload, error) {
	if err := sizeOnlySmall("dyfesm", size); err != nil {
		return nil, err
	}
	const nodes = 12 << 10 // ~96 KB of nodal data
	return &Workload{
		Name: "dyfesm", Suite: "PERFECT",
		Description: "Structural dynamics (FEM)",
		Input:       "4 elements, 1000 time steps",
		DataBytes:   nodes * dbl,
		run: func(m *Machine, scale float64) {
			nodal := m.Alloc(nodes * dbl)
			elem := m.Alloc(8 << 10) // element matrices: resident
			rng := m.Rand()
			steps := iters(60, scale)
			for t := 0; t < steps; t++ {
				// Displacement/velocity updates: two sequential sweeps
				// of the nodal arrays per step.
				for i := 0; i < nodes; i++ {
					m.Loop(0)
					m.Load(nodal + mem.Addr(i*dbl))
					m.Inst(7)
				}
				for i := 0; i < nodes; i++ {
					m.Loop(1)
					m.Load(nodal + mem.Addr(i*dbl))
					m.Store(nodal + mem.Addr(i*dbl))
					m.Inst(8)
				}
				for e := 0; e < 2000; e++ {
					m.Loop(2)
					// Element compute on resident matrices.
					for k := 0; k < 24; k++ {
						m.Load(elem + mem.Addr(((k*64+e%64)%1024)*8))
						m.Inst(9)
					}
					// Gather/scatter four nodes of this element; node
					// numbering is irregular after mesh renumbering.
					for k := 0; k < 4; k++ {
						nd := rng.Intn(nodes)
						m.Load(nodal + mem.Addr(nd*dbl))
						m.Store(nodal + mem.Addr(nd*dbl))
						m.Inst(7)
					}
				}
			}
		},
	}, nil
}

// newMdg models the liquid-water MD code: O(N^2)-ish pair interactions
// over 343 molecules (~200 KB). Each partner's 72-byte record is a
// short run at an effectively random offset, giving the paper's 50%
// of hits from streams of length <= 5. Calibration: data 0.2 MB, miss
// rate 0.03%, hit rate ~50%.
func newMdg(size Size) (*Workload, error) {
	if err := sizeOnlySmall("mdg", size); err != nil {
		return nil, err
	}
	const mols = 343
	const rec = 576 // 3 atoms x 3 coords x (pos, vel, force) x 8 B
	return &Workload{
		Name: "mdg", Suite: "PERFECT",
		Description: "Liquid water simulation (molecular dynamics)",
		Input:       "343 molecules, 100 time steps",
		DataBytes:   mols * rec,
		run: func(m *Machine, scale float64) {
			arena := m.Alloc(mols * rec)
			forces := m.Alloc(mols * rec / 2)
			work := m.Alloc(4 << 10)
			steps := iters(30, scale)
			for t := 0; t < steps; t++ {
				for i := 0; i < mols; i++ {
					m.Loop(0)
					m.BlockRun(arena+mem.Addr(i*rec), 144, 4)
					for j := i + 1; j < mols; j += 7 {
						m.Loop(1)
						// Partner molecule: a 144-byte run elsewhere.
						m.BlockRun(arena+mem.Addr(j*rec), 144, 6)
						// Resident pair workspace: the O-O, O-H and H-H
						// distance computations.
						for k := 0; k < 10; k++ {
							m.Load(work + mem.Addr(((j+k*51)%512)*8))
							m.Inst(8)
						}
					}
				}
				// Force reduction and position integration: long
				// sequential sweeps (Table 3: 43% of mdg's hits come
				// from streams longer than 20).
				for r := 0; r < 3; r++ {
					for i := 0; i < mols*rec/2; i += dbl {
						m.Loop(2)
						m.Load(forces + mem.Addr(i))
						m.Store(forces + mem.Addr(i))
						m.Inst(9)
					}
				}
			}
		},
	}, nil
}

// newQcd models the lattice-QCD code: a 12^4 site lattice of SU(3)
// link matrices (~9 MB). Site updates read the site's own links (a
// ~576-byte run) and hopping-term neighbours at the four dimensional
// strides; most compute is on a resident accumulator. Calibration:
// data 9.2 MB, miss rate 0.16%, MPI 0.06%, hit rate ~40-45%, hits 32%
// short / 43% >20.
func newQcd(size Size) (*Workload, error) {
	if err := sizeOnlySmall("qcd", size); err != nil {
		return nil, err
	}
	const l = 12
	sites := l * l * l * l
	const linkRec = 576 // 4 links x 3x3 complex doubles
	return &Workload{
		Name: "qcd", Suite: "PERFECT",
		Description: "Quantum chromodynamics",
		Input:       "12 x 12 x 12 x 12 lattice",
		DataBytes:   uint64(sites * linkRec),
		run: func(m *Machine, scale float64) {
			links := m.Alloc(uint64(sites * linkRec))
			mom := m.Alloc(uint64(sites * linkRec / 2))
			acc := m.Alloc(4 << 10)
			sweeps := iters(3, scale)
			strides := []int{1, l, l * l, l * l * l}
			for s := 0; s < sweeps; s++ {
				for site := 0; site < sites; site++ {
					m.Loop(0)
					// Own links: contiguous run over the site record.
					m.BlockRun(links+mem.Addr(site*linkRec), 128, 3)
					// Hopping terms: one SU(3) link matrix (144 B, a
					// two/three-block run) per dimension. The staple
					// direction — and so the offset into the
					// neighbour's record — varies with the site, which
					// is what keeps these accesses off any constant
					// stride (real staple loops rotate through the
					// mu/nu link pairs).
					for d, st := range strides {
						nb := site + st
						if nb >= sites {
							nb -= sites
						}
						off := mem.Addr(((site + d) & 3) * 144)
						base := links + mem.Addr(nb*linkRec)
						if d < 1 {
							// Full staple: both link matrices of the
							// plaquette — a four-block run.
							m.Load(base + off)
							m.Load(base + off + 64)
							m.Load(base + off + 128)
							m.Load(base + off + 192)
							m.Inst(40)
						} else {
							// Single hopping link: an isolated touch.
							m.Load(base + off)
							m.Inst(24)
						}
					}
					// Resident accumulator compute: the SU(3) matrix
					// multiplies run entirely from registers and the
					// accumulator tile.
					for k := 0; k < 24; k++ {
						m.Load(acc + mem.Addr(((k*8+site%8)%512)*8))
						m.Inst(11)
					}
				}
				// Momentum update: a long sequential sweep per
				// molecular-dynamics trajectory step (the >20 bucket
				// holds 43% of qcd's hits in Table 3).
				for i := 0; i < sites*linkRec/16; i += dbl {
					m.Loop(1)
					m.Load(mom + mem.Addr(i))
					m.Store(mom + mem.Addr(i))
					m.Inst(10)
				}
			}
		},
	}, nil
}

// newTrfd models the two-electron integral transformation: repeated
// passes of matrix products over ~8 MB of packed integrals. Row sweeps
// are very long unit-stride streams (90% of hits from lengths > 20);
// column sweeps walk a constant non-unit stride that only the stride
// scheme catches (hit 50% -> 65%), and the strided misses under
// allocate-on-miss are what blow EB up to 96% unfiltered (11% with
// the filter). Miss rate is tiny (0.05%) because the inner products
// run from a resident workspace.
func newTrfd(size Size) (*Workload, error) {
	if err := sizeOnlySmall("trfd", size); err != nil {
		return nil, err
	}
	const dim = 1000         // transformed matrix dimension
	const ints = 1000 * 1000 // 8 MB of packed integrals
	return &Workload{
		Name: "trfd", Suite: "PERFECT",
		Description: "Quantum mechanics (integral transformation)",
		Input:       "two-electron integral transformation",
		DataBytes:   ints * dbl,
		run: func(m *Machine, scale float64) {
			xrsiq := m.Alloc(ints * dbl) // packed integral matrix
			work := m.Alloc(16 << 10)    // resident DGEMM tile
			passes := iters(2, scale)
			for p := 0; p < passes; p++ {
				// Row pass: long unit-stride sweeps with dominant
				// resident-tile compute between touches.
				for i := 0; i < ints; i += 2 {
					m.Loop(0)
					m.Load(xrsiq + mem.Addr(i*dbl))
					m.Load(work + mem.Addr((i%2048)*8))
					m.Load(work + mem.Addr(((i+512)%2048)*8))
					m.Load(work + mem.Addr(((i+1024)%2048)*8))
					m.Load(work + mem.Addr(((i+96)%2048)*8))
					m.Inst(38)
				}
				// Column pass: constant stride dim*dbl = 8 KB
				// (2^10 words) — non-unit stride territory.
				for col := 0; col < dim; col += 8 {
					for row := 0; row < dim; row++ {
						m.Loop(1)
						m.Load(xrsiq + mem.Addr((row*dim+col)*dbl))
						m.Load(work + mem.Addr((row%2048)*8))
						m.Load(work + mem.Addr(((row+512)%2048)*8))
						m.Load(work + mem.Addr(((row+1024)%2048)*8))
						m.Load(work + mem.Addr(((row+1536)%2048)*8))
						m.Load(work + mem.Addr(((row+256)%2048)*8))
						m.Inst(42)
					}
				}
			}
		},
	}, nil
}
