package workload

// Structural tests for the PERFECT benchmark models.

import (
	"testing"

	"streamsim/internal/mem"
)

func TestPerfectSuiteMembership(t *testing.T) {
	for _, name := range PerfectNames() {
		w, err := New(name, SizeSmall)
		if err != nil {
			t.Fatal(err)
		}
		if w.Suite != "PERFECT" {
			t.Errorf("%s suite = %q, want PERFECT", name, w.Suite)
		}
	}
	for _, name := range NASNames() {
		w, err := New(name, SizeSmall)
		if err != nil {
			t.Fatal(err)
		}
		if w.Suite != "NAS" {
			t.Errorf("%s suite = %q, want NAS", name, w.Suite)
		}
	}
}

func TestAdmMostlyResident(t *testing.T) {
	// adm's references overwhelmingly hit a small workspace; the
	// scattered field gathers are rare (miss rate 0.04% in Table 1).
	c := traceOf(t, "adm", SizeSmall)
	// Workspace churn shows as a small set of recurring deltas
	// covering nearly all references.
	var top uint64
	for _, n := range c.deltas {
		if n > top {
			top = n
		}
	}
	if frac := float64(c.unitish) / float64(c.total); frac < 0.9 {
		t.Errorf("adm resident fraction = %.2f, want > 0.9", frac)
	}
}

func TestBdnaScatteredGathers(t *testing.T) {
	c := traceOf(t, "bdna", SizeSmall)
	// Far partner gathers land all over a ~2 MB arena: many large
	// distinct deltas.
	var farDistinct int
	for d, n := range c.deltas {
		if (d > 4096 || d < -4096) && n > 0 {
			farDistinct++
		}
	}
	if farDistinct < 500 {
		t.Errorf("bdna distinct far deltas = %d, want many (neighbour-list gathers)", farDistinct)
	}
}

func TestMdgPairwiseRecords(t *testing.T) {
	c := traceOf(t, "mdg", SizeSmall)
	// Molecule records are walked in 8-byte steps (144-byte runs).
	if frac := float64(c.deltas[8]) / float64(c.total); frac < 0.3 {
		t.Errorf("mdg 8-byte-step fraction = %.2f, want > 0.3", frac)
	}
}

func TestQcdLatticeStrides(t *testing.T) {
	c := traceOf(t, "qcd", SizeSmall)
	// Hopping terms touch neighbour records at the four dimensional
	// strides of a 12^4 lattice with 576-byte records.
	const l = 12
	found := 0
	for _, dim := range []int64{576 * l, 576 * l * l} {
		for d := range c.deltas {
			if d > dim/2 && d < dim*2 {
				found++
				break
			}
		}
	}
	if found == 0 {
		t.Error("qcd shows no dimensional-stride deltas")
	}
}

func TestTrfdLongRowSweeps(t *testing.T) {
	c := traceOf(t, "trfd", SizeSmall)
	// The row pass steps 16 bytes through the integral matrix between
	// resident-tile touches; as a consecutive-delta signature the
	// dominant recurring pattern is small deltas, with an 8 KB column
	// stride also present.
	var colStride uint64
	for d, n := range c.deltas {
		if d >= 7000 && d <= 9000 {
			colStride += n
		}
	}
	if colStride == 0 {
		t.Error("trfd column-pass stride missing")
	}
}

func TestSpec77ReadDominated(t *testing.T) {
	// Transforms read far more than they write (the FFT lines are the
	// only read-modify-write phase).
	w, err := New("spec77", SizeSmall)
	if err != nil {
		t.Fatal(err)
	}
	var reads, writes uint64
	sink := sinkFunc(func(a mem.Access) {
		switch a.Kind {
		case mem.Read:
			reads++
		case mem.Write:
			writes++
		}
	})
	if err := w.Run(sink, 0.05); err != nil {
		t.Fatal(err)
	}
	if reads < 5*writes {
		t.Errorf("spec77 reads/writes = %d/%d, want read-dominated", reads, writes)
	}
}

func TestDyfesmSmallFootprint(t *testing.T) {
	w, err := New("dyfesm", SizeSmall)
	if err != nil {
		t.Fatal(err)
	}
	if w.DataBytes > 256<<10 {
		t.Errorf("dyfesm data set %d B, want ~100 KB (Table 1: 0.1 MB)", w.DataBytes)
	}
}

func TestAllAddressesInDataOrCodeSegment(t *testing.T) {
	for _, name := range Names() {
		w, err := New(name, SizeSmall)
		if err != nil {
			t.Fatal(err)
		}
		bad := 0
		sink := sinkFunc(func(a mem.Access) {
			if a.Kind == mem.IFetch {
				if a.Addr < codeSegBase || a.Addr >= heapBase {
					bad++
				}
				return
			}
			if a.Addr < heapBase {
				bad++
			}
		})
		if err := w.Run(sink, 0.02); err != nil {
			t.Fatal(err)
		}
		if bad > 0 {
			t.Errorf("%s emitted %d out-of-segment addresses", name, bad)
		}
	}
}
