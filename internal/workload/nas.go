// NAS benchmark models (Table 1, first eight rows). Each kernel mimics
// the memory behaviour of the real program's inner loops at the
// paper's input sizes; the doc comment on each notes the published
// characteristics it is calibrated against.
package workload

import (
	"fmt"

	"streamsim/internal/mem"
)

const dbl = 8 // bytes per double-precision word

func init() {
	register("embar", newEmbar)
	register("mgrid", newMgrid)
	register("cgm", newCgm)
	register("fftpde", newFftpde)
	register("is", newIS)
	register("appsp", newAppsp)
	register("appbt", newAppbt)
	register("applu", newApplu)
}

// newEmbar models EP (embarrassingly parallel): Gaussian-pair
// generation dominated by register/scratch compute, with results
// streamed sequentially into a ~1 MB table. Calibration targets:
// data set 1.0 MB, D-miss rate 0.28%, MPI 0.10%, stream hit rate ~99%
// at any stream count (one long unit stream), stream lengths almost
// all >20, EB ~8%.
func newEmbar(size Size) (*Workload, error) {
	if err := sizeOnlySmall("embar", size); err != nil {
		return nil, err
	}
	const elems = 128 << 10 // 1 MB of doubles
	return &Workload{
		Name: "embar", Suite: "NAS",
		Description: "Embarrassingly parallel",
		Input:       "2^17 Gaussian pairs",
		DataBytes:   elems * dbl,
		run: func(m *Machine, scale float64) {
			table := m.Alloc(elems * dbl)
			scratch := m.Alloc(256) // RNG state + Box-Muller temporaries
			n := iters(elems, scale)
			for i := 0; i < n; i++ {
				m.Loop(0)
				// ~36 scratch references (always cache-resident) and
				// ~130 instructions of RNG and transcendental compute
				// per generated pair...
				for k := 0; k < 18; k++ {
					m.Load(scratch + mem.Addr((k%12)*16))
					m.Store(scratch + mem.Addr((k%12)*16+8))
					m.Inst(7)
				}
				// ...then one streaming store of the result.
				m.Store(table + mem.Addr(i*dbl))
				m.Inst(6)
			}
		},
	}, nil
}

// newMgrid models the MG multigrid kernel: restriction, smoothing and
// interpolation sweeps over a hierarchy of 3-D grids. Each sweep walks
// six or seven arrays in lockstep — the independent unit-stride lanes
// that make the Figure 3 hit rate saturate around seven streams (the
// paper ties saturation to "the number of unique array references in
// the program loops"). The in-row +/-1 stencil taps share the central
// lane's cache block. Calibration targets: data 1.0 MB (32^3), miss
// rate 0.84%, MPI 0.08%, hit rate ~85-90%, 86% of hits from streams
// longer than 20, EB 30% unfiltered / ~13% filtered. SizeLarge is
// Table 4's 64^3.
func newMgrid(size Size) (*Workload, error) {
	n := 32
	if size == SizeLarge {
		n = 64
	}
	cells := n * n * n
	return &Workload{
		Name: "mgrid", Suite: "NAS",
		Description: "Multigrid kernel",
		Input:       fmt3d(n) + " grid",
		DataBytes:   uint64(4 * cells * dbl),
		run: func(m *Machine, scale float64) {
			rng := m.Rand()
			// Four full-resolution arrays plus per-level coarse grids.
			u := m.Alloc(uint64(cells * dbl))
			v := m.Alloc(uint64(cells * dbl))
			r := m.Alloc(uint64(cells * dbl))
			z := m.Alloc(uint64(cells * dbl))
			u2 := m.Alloc(uint64(cells / 8 * dbl)) // coarse grid
			r2 := m.Alloc(uint64(cells / 8 * dbl))
			coef := m.Alloc(512) // stencil coefficients: resident
			sweeps := iters(5, scale)
			for s := 0; s < sweeps; s++ {
				// Smooth + residual: seven lanes walked in lockstep
				// (u with its +/-1 row taps, v, r, z, and the coarse
				// pair at half rate).
				for c := 1; c < cells-1; c++ {
					m.Loop(0)
					a := mem.Addr(c * dbl)
					m.Load(u + a)
					m.Load(u + a - dbl)
					m.Load(u + a + dbl)
					m.Load(v + a)
					m.Load(z + a)
					m.Store(r + a)
					if c%8 == 0 {
						h := mem.Addr(c / 8 * dbl)
						m.Load(u2 + h)
						m.Store(r2 + h)
					}
					// Stencil weights and the 27-point compute are
					// cache-resident.
					m.Load(coef + mem.Addr((c%8)*8))
					m.Load(coef + mem.Addr(((c+3)%8)*8))
					m.Inst(42)
				}
				// Coarse-level smoothing: short sweeps over the
				// half-resolution grids.
				for c := 1; c < cells/8-1; c++ {
					m.Loop(1)
					h := mem.Addr(c * dbl)
					m.Load(u2 + h)
					m.Load(r2 + h)
					m.Store(u2 + h)
					m.Inst(18)
				}
				// Boundary-face updates and inter-level index fix-ups:
				// short two-block runs at randomly scattered plane
				// offsets — the short-run and isolated component that
				// keeps mgrid's hit rate in the paper's 76-88% band and
				// its EB near 30% (Table 2). Random placement keeps the
				// czone FSM from inventing a stride for them.
				for face := 0; face < 64*n; face++ {
					m.Loop(2)
					row := rng.Intn(cells-16) &^ (n - 1)
					for i := 0; i < 16; i += 2 {
						m.Load(u + mem.Addr((row+i)*dbl))
						m.Inst(10)
					}
				}
			}
		},
	}, nil
}

// newCgm models the CG kernel: sparse matrix-vector products where the
// matrix values and column indices stream sequentially while the
// source-vector gathers are indirect. At the small input (n=1400) the
// 11 KB source vector is cache-resident, so the indirections hit and
// streams perform well — the paper's "surprisingly cgm exhibits good
// stream performance". At Table 4's large input (n=5600) the vector
// outgrows what the cache retains and the irregular gathers drag the
// stream hit rate down (85% -> 51%). Calibration: data 2.9 MB, miss
// rate 3.33%, MPI 1.43%.
func newCgm(size Size) (*Workload, error) {
	n, nnz := 1400, 78148
	if size == SizeLarge {
		n, nnz = 5600, 98148
	}
	return &Workload{
		Name: "cgm", Suite: "NAS",
		Description: "Smallest eigenvalue of a sparse matrix",
		Input:       fmtMat(n, nnz),
		// Matrix values + column indices, the CSR generation workspace
		// (the NAS makea routine keeps a second copy), and the CG
		// vectors — matching Table 1's 2.9 MB for the small input.
		DataBytes: uint64(3*nnz*(dbl+4) + 6*n*dbl),
		run: func(m *Machine, scale float64) {
			a := m.Alloc(uint64(nnz * dbl))
			colidx := m.Alloc(uint64(nnz * 4))
			x := m.Alloc(uint64(n * dbl))
			q := m.Alloc(uint64(n * dbl))
			zvec := m.Alloc(uint64(n * dbl))
			rng := m.Rand()
			perRow := nnz / n
			cgIters := iters(12, scale)
			for it := 0; it < cgIters; it++ {
				// q = A*x: stream a[] and colidx[], gather x[],
				// accumulate in a resident partial-sum slot.
				j := 0
				for row := 0; row < n; row++ {
					for k := 0; k < perRow; k++ {
						m.Loop(0)
						m.Load(colidx + mem.Addr(j*4))
						m.Load(a + mem.Addr(j*dbl))
						// Sparse pattern: random column within the row's
						// neighbourhood (banded-ish with long tails).
						col := rng.Intn(n)
						m.Load(x + mem.Addr(col*dbl))
						m.Load(q + mem.Addr(row*dbl))
						m.Store(q + mem.Addr(row*dbl))
						m.Inst(11)
						j++
					}
				}
				// Vector updates: alpha/beta daxpys over n-vectors.
				for i := 0; i < n; i++ {
					m.Loop(1)
					m.Load(q + mem.Addr(i*dbl))
					m.Load(zvec + mem.Addr(i*dbl))
					m.Store(x + mem.Addr(i*dbl))
					m.Inst(10)
				}
			}
		},
	}, nil
}

// newFftpde models the 3-D FFT PDE solver: per-dimension FFT passes
// over a 64^3 complex grid. The x-pass is unit stride; the y and z
// passes walk columns with strides of 2^8 and 2^14 words — the large
// non-unit strides that cripple ordinary streams (hit rate 26%) and
// that the czone scheme recovers (71%), with czone sizes of 16-23 bits
// effective (Figure 9). Calibration: data 14.7 MB, miss rate 3.08%,
// MPI 0.50%, EB 158% unfiltered.
func newFftpde(size Size) (*Workload, error) {
	if err := sizeOnlySmall("fftpde", size); err != nil {
		return nil, err
	}
	const n = 64
	const cplx = 16 // complex double
	cells := n * n * n
	return &Workload{
		Name: "fftpde", Suite: "NAS",
		Description: "3-D PDE solver using FFT",
		Input:       fmt3d(n) + " complex array",
		DataBytes:   uint64(3 * cells * cplx),
		run: func(m *Machine, scale float64) {
			grid := m.Alloc(uint64(cells * cplx))
			chk := m.Alloc(uint64(cells * cplx)) // evolved copy
			work := m.Alloc(uint64(n * cplx))    // per-column FFT workspace
			steps := iters(2, scale)
			for t := 0; t < steps; t++ {
				// Evolve + copy: unit-stride sweep of both arrays.
				for i := 0; i < cells; i++ {
					m.Loop(0)
					m.Load(grid + mem.Addr(i*cplx))
					m.Store(chk + mem.Addr(i*cplx))
					m.Inst(10)
				}
				// x-pass: unit-stride butterflies line by line; twiddle
				// factors and bit-reversal tables are resident.
				for line := 0; line < n*n; line++ {
					base := grid + mem.Addr(line*n*cplx)
					for i := 0; i < n; i++ {
						m.Loop(1)
						m.Load(base + mem.Addr(i*cplx))
						m.Load(work + mem.Addr((i%n)*cplx))
						m.Load(work + mem.Addr(((i*2)%n)*cplx))
						m.Store(base + mem.Addr(i*cplx))
						m.Inst(16)
					}
				}
				// y-pass: columns at stride n*cplx = 1 KB (2^8 words).
				m.fftColumnPass(grid, n, n*cplx, work)
				// z-pass: columns at stride n*n*cplx = 64 KB (2^14 words).
				m.fftColumnPass(grid, n, n*n*cplx, work)
			}
		},
	}, nil
}

// fftColumnPass walks every column of a cube along one dimension with
// the given byte stride between consecutive column elements.
func (m *Machine) fftColumnPass(grid mem.Addr, n, strideBytes int, work mem.Addr) {
	const cplx = 16
	for col := 0; col < n*n; col++ {
		// Column origin: enumerate the plane orthogonal to the pass.
		base := grid
		if strideBytes == n*cplx { // y-pass: origin spans (x, z)
			x, z := col%n, col/n
			base += mem.Addr((z*n*n + x) * cplx)
		} else { // z-pass: origin spans (x, y)
			base += mem.Addr(col * cplx)
		}
		for i := 0; i < n; i++ {
			m.Loop(2)
			a := base + mem.Addr(i*strideBytes)
			m.Load(a)
			m.Load(work + mem.Addr((i%n)*cplx))
			m.Load(work + mem.Addr(((i*2)%n)*cplx))
			m.Store(a)
			m.Inst(16)
		}
	}
}

// newIS models the integer-sort (bucket sort) kernel: sequential key
// reads feeding a cache-resident count table, then a ranking phase
// that scatters each key to its sorted position — isolated misses the
// unit-stride filter eliminates (EB 48% -> 7% with almost no hit-rate
// loss). Calibration: data 0.8 MB, miss rate 0.53%, MPI 0.20%, hit
// rate ~55%, hits split ~41% short / 59% long (Table 3).
func newIS(size Size) (*Workload, error) {
	if err := sizeOnlySmall("is", size); err != nil {
		return nil, err
	}
	const keys = 64 << 10
	const maxKey = 2048
	return &Workload{
		Name: "is", Suite: "NAS",
		Description: "Integer sort",
		Input:       "64K integers, maxkey = 2048",
		DataBytes:   keys*4 + keys*4 + maxKey*4,
		run: func(m *Machine, scale float64) {
			keyArr := m.Alloc(keys * 4)
			rank := m.Alloc(keys * 4)
			count := m.Alloc(maxKey * 4) // 8 KB: cache resident
			rng := m.Rand()
			passes := iters(10, scale)
			for p := 0; p < passes; p++ {
				// Counting phase: stream keys, bump histogram (the
				// histogram and its bookkeeping are cache-resident).
				for i := 0; i < keys; i++ {
					m.Loop(0)
					m.Load(keyArr + mem.Addr(i*4))
					k := rng.Intn(maxKey)
					m.Load(count + mem.Addr(k*4))
					m.Store(count + mem.Addr(k*4))
					m.Inst(12)
				}
				// Prefix sum over the (resident) histogram.
				for k := 0; k < maxKey; k++ {
					m.Loop(1)
					m.Load(count + mem.Addr(k*4))
					m.Store(count + mem.Addr(k*4))
					m.Inst(4)
				}
				// Ranking: stream keys again; runs of equal-valued keys
				// land in consecutive sorted slots, so the output side
				// is bursts of contiguous stores at scattered bucket
				// positions — the short-stream component behind IS's
				// 41%-short length distribution (Table 3).
				for i := 0; i < keys; i++ {
					m.Loop(2)
					m.Load(keyArr + mem.Addr(i*4))
					m.Load(count + mem.Addr(rng.Intn(maxKey)*4))
					m.Inst(9)
					if i%24 == 0 {
						pos := rng.Intn(keys - 64)
						for b := 0; b < 48; b++ { // 192 B: 3-4 blocks
							m.Store(rank + mem.Addr((pos+b)*4))
							m.Inst(3)
						}
					}
				}
			}
		},
	}, nil
}

// newAppsp models the SP pentadiagonal ADI solver: per time step a
// unit-stride x-sweep, then y and z sweeps whose five-variable cell
// records are walked at strides of 5n and 5n^2 doubles. The strided
// sweeps defeat unit-only streams (hit 33% at the small input) and are
// recovered by stride detection (65%); Figure 9 shows a large czone
// suffices. Calibration: data 2.2 MB (24^3), miss rate 2.24%,
// MPI 0.38%, EB 134% unfiltered / 45% filtered.
func newAppsp(size Size) (*Workload, error) {
	// Table 4 compares 12^3 vs 24^3 (Table 1 traces the larger input;
	// the Table 1 harness therefore uses SizeLarge for this benchmark).
	n := 12
	if size == SizeLarge {
		n = 24
	}
	return newADI("appsp", "Fluid dynamics (scalar pentadiagonal ADI)", n, 0.50, 30, false)
}

// newAppbt models the BT block-tridiagonal solver: 5x5 Jacobian blocks
// (200-byte dense runs) walked cell by cell. Along x the blocks are
// contiguous (long streams); along y/z each 200-byte run is isolated
// at a large stride, producing the paper's many short streams — 63% of
// hits from lengths <= 5, which is why the filter costs appbt hit rate
// (65% -> 45%). Calibration: data 4.2 MB, miss 1.88%, MPI 0.45%.
func newAppbt(size Size) (*Workload, error) {
	n := 12
	if size == SizeLarge {
		n = 24
	}
	cells := n * n * n
	const jacBytes = 200 // one 5x5 Jacobian block of doubles (not a cache-geometry size)
	return &Workload{
		Name: "appbt", Suite: "NAS",
		Description: "Fluid dynamics (block tridiagonal ADI)",
		Input:       fmt3d(n) + " grid",
		DataBytes:   uint64(3 * cells * jacBytes),
		run: func(m *Machine, scale float64) {
			jacA := m.Alloc(uint64(cells * jacBytes))
			jacB := m.Alloc(uint64(cells * jacBytes))
			jacC := m.Alloc(uint64(cells * jacBytes))
			rhs := m.Alloc(uint64(cells * 5 * dbl))
			lhs := m.Alloc(4 << 10) // factored 5x5 pivot tile: resident
			rng := m.Rand()
			steps := iters(18, scale)
			for t := 0; t < steps; t++ {
				// x-solves: contiguous block runs, long streams; the
				// 5x5 Gaussian elimination itself runs on a resident
				// pivot tile.
				for c := 0; c < cells; c++ {
					m.Loop(0)
					m.BlockRun(jacA+mem.Addr(c*jacBytes), jacBytes, 3)
					for k := 0; k < 10; k++ {
						m.Load(lhs + mem.Addr(((c+k*37)%512)*8))
						m.Inst(8)
					}
					m.Store(rhs + mem.Addr(c*5*dbl))
					m.Inst(10)
				}
				// y- and z-solves: the same 200-byte Jacobian blocks in
				// transposed order — short runs at large strides, the
				// source of appbt's 63%-short length distribution. The
				// forward/back substitution interleaves the three
				// Jacobian factors, so consecutive run starts do not
				// form a constant stride (the paper finds appbt gains
				// nothing from stride detection).
				for k := 0; k < n; k++ {
					for i := 0; i < n; i++ {
						for j := 0; j < n; j++ {
							m.Loop(1)
							c := (k*n+j)*n + i
							jac := jacB
							if rng.Intn(2) == 1 {
								jac = jacC
							}
							m.BlockRun(jac+mem.Addr(c*jacBytes), jacBytes, 3)
							for w := 0; w < 10; w++ {
								m.Load(lhs + mem.Addr(((c+w*41)%512)*8))
								m.Inst(8)
							}
							m.Load(rhs + mem.Addr(c*5*dbl))
							m.Inst(12)
						}
					}
				}
				for j := 0; j < n; j++ {
					for i := 0; i < n; i++ {
						for k := 0; k < n; k++ {
							m.Loop(2)
							c := (k*n+j)*n + i
							jac := jacC
							if rng.Intn(2) == 1 {
								jac = jacB
							}
							m.BlockRun(jac+mem.Addr(c*jacBytes), jacBytes, 3)
							for w := 0; w < 10; w++ {
								m.Load(lhs + mem.Addr(((c+w*43)%512)*8))
								m.Inst(8)
							}
							m.Load(rhs + mem.Addr(c*5*dbl))
							m.Inst(12)
						}
					}
				}
			}
		},
	}, nil
}

// newApplu models the LU SSOR solver: like appbt but dominated by
// wavefront sweeps that stay unit stride, so streams do well and
// improve with the input (62% at 12^3 -> 73% at 24^3, Table 4).
// Calibration: data 5.4 MB, miss rate 1.26%, MPI 0.18%.
func newApplu(size Size) (*Workload, error) {
	n := 12
	if size == SizeLarge {
		n = 24
	}
	// scramble=true: SSOR's wavefront ordering keeps the y/z cell
	// records off any constant stride, so applu gains little from
	// stride detection (it is absent from the paper's Figure 8 list).
	return newADI("applu", "Fluid dynamics (SSOR)", n, 0.15, 45, true)
}

// newADI builds the shared ADI/SSOR skeleton used by appsp and applu:
// per sweep over an n^3 grid of five-variable cells, a unit-stride
// x phase and strided y/z phases; stridedFrac sets how much of the
// work runs in the strided directions. With scramble set, the y/z cell
// addresses are jittered so they never verify as a constant stride
// (SSOR wavefronts versus SP's regular line sweeps).
func newADI(name, desc string, n int, stridedFrac float64, steps int, scramble bool) (*Workload, error) {
	cells := n * n * n
	rec := 5 * dbl // five solution variables per cell
	return &Workload{
		Name: name, Suite: "NAS",
		Description: desc,
		Input:       fmt3d(n) + " grid",
		DataBytes:   uint64(4 * cells * rec),
		run: func(m *Machine, scale float64) {
			u := m.Alloc(uint64(cells * rec))
			rsd := m.Alloc(uint64(cells * rec))
			flux := m.Alloc(uint64(cells * rec))
			tile := m.Alloc(4 << 10) // 5x5 system solve scratch: resident
			rng := m.Rand()
			nstep := iters(steps, scale)
			ySteps := int(stridedFrac * float64(n))
			for t := 0; t < nstep; t++ {
				// x-sweep: unit stride over u and rsd, with the 5x5
				// per-cell system solve running from a resident tile.
				for c := 0; c < cells; c++ {
					m.Loop(0)
					a := mem.Addr(c * rec)
					for v := 0; v < 5; v++ {
						m.Load(u + a + mem.Addr(v*dbl))
						m.Load(tile + mem.Addr(((c+v)%256)*8))
						m.Load(tile + mem.Addr(((c+v+64)%256)*8))
						m.Inst(11)
					}
					m.Store(rsd + a)
					m.Inst(8)
				}
				// y/z sweeps: cell records at strides 5n and 5n^2
				// doubles. Only stridedFrac of the lines are walked per
				// step (the solvers alternate directions).
				for j := 0; j < ySteps; j++ {
					for k := 0; k < n; k++ {
						for i := 0; i < n; i++ {
							m.Loop(1)
							// y direction: stride n cells.
							cy := (k*n+i)*n + j
							a := mem.Addr(cy * rec)
							if scramble {
								a += mem.Addr(rng.Intn(16) * dbl)
							}
							m.Load(u + a)
							m.Load(flux + a)
							m.Load(tile + mem.Addr((cy%256)*8))
							m.Load(tile + mem.Addr(((cy+32)%256)*8))
							m.Store(rsd + a)
							m.Inst(24)
						}
					}
					for k := 0; k < n; k++ {
						for i := 0; i < n; i++ {
							m.Loop(2)
							// z direction: stride n^2 cells.
							cz := (i*n+k)*n + j
							a := mem.Addr(cz * rec)
							if scramble {
								a += mem.Addr(rng.Intn(16) * dbl)
							}
							m.Load(u + a)
							m.Load(tile + mem.Addr((cz%256)*8))
							m.Store(rsd + a)
							m.Inst(20)
						}
					}
				}
			}
		},
	}, nil
}

// fmt3d renders "n x n x n".
func fmt3d(n int) string {
	return fmt.Sprintf("%d x %d x %d", n, n, n)
}

// fmtMat renders the sparse-matrix input description.
func fmtMat(n, nnz int) string {
	return fmt.Sprintf("%d x %d matrix, %d non-zeros", n, n, nnz)
}
