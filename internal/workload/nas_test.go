package workload

// Structural tests for the NAS benchmark models: data-set sizes from
// Table 1, access-kind mixes, and the specific address patterns each
// model exists to produce (strides for fftpde/appsp, short block runs
// for appbt, indirection for cgm).

import (
	"testing"

	"streamsim/internal/mem"
)

// strideCounter classifies data-reference deltas to verify a model
// emits the stride mix its benchmark is known for.
type strideCounter struct {
	last      mem.Addr
	have      bool
	unitish   uint64 // |delta| <= one block
	strided   uint64 // constant larger jumps, tallied per distinct delta
	deltas    map[int64]uint64
	total     uint64
	instTotal uint64
}

func newStrideCounter() *strideCounter {
	return &strideCounter{deltas: map[int64]uint64{}}
}

func (s *strideCounter) Access(a mem.Access) {
	if a.Kind == mem.IFetch {
		return
	}
	s.total++
	if s.have {
		d := int64(a.Addr) - int64(s.last)
		s.deltas[d]++
		if d >= -64 && d <= 64 {
			s.unitish++
		}
	}
	s.last, s.have = a.Addr, true
}

func (s *strideCounter) AddInstructions(n uint64) { s.instTotal += n }

// run traces a benchmark into the counter at a small scale.
func traceOf(t *testing.T, name string, size Size) *strideCounter {
	t.Helper()
	w, err := New(name, size)
	if err != nil {
		t.Fatal(err)
	}
	c := newStrideCounter()
	if err := w.Run(c, 0.05); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestTable1DataSetSizes(t *testing.T) {
	// Table 1's MB column, with a generous 2x band (the models size
	// their arrays from the paper's input descriptions).
	want := map[string]float64{
		"embar": 1.0, "mgrid": 1.0, "cgm": 2.9, "fftpde": 14.7, "is": 0.8,
		"spec77": 1.3, "adm": 0.6, "bdna": 2.1, "dyfesm": 0.1, "mdg": 0.2,
		"qcd": 9.2, "trfd": 8.0,
	}
	for name, mb := range want {
		w, err := New(name, SizeSmall)
		if err != nil {
			t.Fatal(err)
		}
		got := float64(w.DataBytes) / (1 << 20)
		if got < mb/2 || got > mb*2 {
			t.Errorf("%s data set %.2f MB, want within 2x of %.1f MB", name, got, mb)
		}
	}
}

func TestEmbarIsStoreDominatedStream(t *testing.T) {
	c := traceOf(t, "embar", SizeSmall)
	// One streaming store per ~37 references; everything else hits a
	// tiny scratch: unit-ish deltas dominate completely.
	if frac := float64(c.unitish) / float64(c.total); frac < 0.9 {
		t.Errorf("embar unit-ish fraction = %.2f, want > 0.9", frac)
	}
}

func TestFftpdeHasLargePowerOfTwoStrides(t *testing.T) {
	c := traceOf(t, "fftpde", SizeSmall)
	// The z-pass walks 64 KB strides; the y-pass 1 KB. Interleaved
	// loads/stores mean the raw consecutive-delta stream sees the
	// stride between the store at column element i and the load at
	// element i+1.
	var big uint64
	for d, n := range c.deltas {
		if d >= 1<<10 || d <= -(1<<10) {
			big += n
		}
	}
	if frac := float64(big) / float64(c.total); frac < 0.10 {
		t.Errorf("fftpde large-stride fraction = %.3f, want > 0.10", frac)
	}
}

func TestAppspStridedShare(t *testing.T) {
	c := traceOf(t, "appsp", SizeLarge)
	// The y/z sweeps walk 5n- and 5n^2-double strides (n=24).
	yStride := int64(5 * 24 * 8)
	var strided uint64
	for d, n := range c.deltas {
		if d >= yStride/2 || d <= -yStride/2 {
			strided += n
		}
	}
	if frac := float64(strided) / float64(c.total); frac < 0.05 {
		t.Errorf("appsp strided fraction = %.3f, want > 0.05", frac)
	}
}

func TestCgmEmitsIndirection(t *testing.T) {
	c := traceOf(t, "cgm", SizeSmall)
	// Sparse gathers produce many distinct deltas; a pure streaming
	// code would have a handful.
	if len(c.deltas) < 100 {
		t.Errorf("cgm distinct deltas = %d, want many (indirection)", len(c.deltas))
	}
}

func TestISWriteShare(t *testing.T) {
	w, err := New("is", SizeSmall)
	if err != nil {
		t.Fatal(err)
	}
	var reads, writes uint64
	sink := sinkFunc(func(a mem.Access) {
		switch a.Kind {
		case mem.Read:
			reads++
		case mem.Write:
			writes++
		}
	})
	if err := w.Run(sink, 0.05); err != nil {
		t.Fatal(err)
	}
	if writes == 0 || writes > reads {
		t.Errorf("is reads/writes = %d/%d: sorting writes expected but reads dominate", reads, writes)
	}
}

// sinkFunc adapts a function to the Sink interface.
type sinkFunc func(mem.Access)

func (f sinkFunc) Access(a mem.Access)      { f(a) }
func (f sinkFunc) AddInstructions(n uint64) {}

func TestAppbtShortRuns(t *testing.T) {
	c := traceOf(t, "appbt", SizeLarge)
	// 8-byte steps within 200-byte Jacobian blocks dominate.
	if frac := float64(c.deltas[8]) / float64(c.total); frac < 0.4 {
		t.Errorf("appbt 8-byte-step fraction = %.2f, want > 0.4 (dense 5x5 blocks)", frac)
	}
}

func TestGrownInputsGrowData(t *testing.T) {
	for _, name := range GrowableNames() {
		small, err := New(name, SizeSmall)
		if err != nil {
			t.Fatal(err)
		}
		large, err := New(name, SizeLarge)
		if err != nil {
			t.Fatal(err)
		}
		if large.DataBytes <= small.DataBytes {
			t.Errorf("%s: large input %d B <= small %d B", name, large.DataBytes, small.DataBytes)
		}
	}
}

func TestInstructionsPerReferencePlausible(t *testing.T) {
	// Scientific codes retire a handful of instructions per memory
	// reference; a model outside [1, 50] is a calibration bug.
	for _, name := range Names() {
		c := traceOf(t, name, SizeSmall)
		ipr := float64(c.instTotal) / float64(c.total)
		if ipr < 1 || ipr > 50 {
			t.Errorf("%s: %.1f instructions per reference, want 1-50", name, ipr)
		}
	}
}
