// Custom workloads: a parameterized generator for users who want to
// explore the memory system on their own reference mixes rather than
// the paper's fifteen benchmarks.
package workload

import (
	"fmt"

	"streamsim/internal/mem"
)

// CustomParams describes a synthetic reference mix. Shares are
// relative weights (they need not sum to 1); each emitted reference is
// drawn from the weighted mix.
type CustomParams struct {
	// Name labels the workload (default "custom").
	Name string
	// DataBytes sizes the arena the references fall in (default 8 MB).
	DataBytes uint64
	// References is the trace length at scale 1 (default 1e6).
	References int
	// SequentialShare weights unit-stride sweep references.
	SequentialShare float64
	// StrideShare weights constant-stride walk references.
	StrideShare float64
	// StrideBytes is the constant stride (default 4096).
	StrideBytes int64
	// RandomShare weights uniformly random references.
	RandomShare float64
	// ResidentShare weights references into a cache-resident workspace.
	ResidentShare float64
	// WriteFraction is the probability a data reference is a store.
	WriteFraction float64
	// InstsPerRef is the compute density (default 8).
	InstsPerRef int
}

// withDefaults fills zero fields.
func (p CustomParams) withDefaults() CustomParams {
	if p.Name == "" {
		p.Name = "custom"
	}
	if p.DataBytes == 0 {
		p.DataBytes = 8 << 20
	}
	if p.References == 0 {
		p.References = 1 << 20
	}
	if p.StrideBytes == 0 {
		p.StrideBytes = 4096
	}
	if p.InstsPerRef == 0 {
		p.InstsPerRef = 8
	}
	return p
}

// validate rejects unusable parameter sets.
func (p CustomParams) validate() error {
	total := p.SequentialShare + p.StrideShare + p.RandomShare + p.ResidentShare
	if total <= 0 {
		return fmt.Errorf("workload: custom mix has no positive share")
	}
	for _, s := range []float64{p.SequentialShare, p.StrideShare, p.RandomShare, p.ResidentShare, p.WriteFraction} {
		if s < 0 {
			return fmt.Errorf("workload: negative share in %+v", p)
		}
	}
	if p.WriteFraction > 1 {
		return fmt.Errorf("workload: write fraction %v > 1", p.WriteFraction)
	}
	if p.StrideBytes < 0 {
		return fmt.Errorf("workload: negative stride %d (use a positive stride; backward walks come from the detector)", p.StrideBytes)
	}
	return nil
}

// Custom builds a workload from the parameter mix.
func Custom(p CustomParams) (*Workload, error) {
	p = p.withDefaults()
	if err := p.validate(); err != nil {
		return nil, err
	}
	total := p.SequentialShare + p.StrideShare + p.RandomShare + p.ResidentShare
	return &Workload{
		Name: p.Name, Suite: "custom",
		Description: "user-defined reference mix",
		Input: fmt.Sprintf("seq %.0f%% / stride %.0f%% / random %.0f%% / resident %.0f%%",
			100*p.SequentialShare/total, 100*p.StrideShare/total,
			100*p.RandomShare/total, 100*p.ResidentShare/total),
		DataBytes: p.DataBytes,
		run: func(m *Machine, scale float64) {
			arena := m.Alloc(p.DataBytes)
			resident := m.Alloc(8 << 10)
			rng := m.Rand()
			n := iters(p.References, scale)
			seqPos, stridePos := int64(0), int64(0)
			arenaBytes := int64(p.DataBytes)
			for i := 0; i < n; i++ {
				m.Loop(0)
				r := rng.Float64() * total
				var addr mem.Addr
				switch {
				case r < p.SequentialShare:
					addr = arena + mem.Addr(seqPos)
					seqPos = (seqPos + 8) % arenaBytes
				case r < p.SequentialShare+p.StrideShare:
					addr = arena + mem.Addr(stridePos)
					stridePos = (stridePos + p.StrideBytes) % arenaBytes
				case r < p.SequentialShare+p.StrideShare+p.RandomShare:
					addr = arena + mem.Addr(rng.Int63n(arenaBytes))&^7
				default:
					addr = resident + mem.Addr(rng.Intn(1024))*8
				}
				if rng.Float64() < p.WriteFraction {
					m.Store(addr)
				} else {
					m.Load(addr)
				}
				m.Inst(p.InstsPerRef)
			}
		},
	}, nil
}
