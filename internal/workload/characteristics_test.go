package workload_test

// Characteristics tests: pin each benchmark model to the qualitative
// behaviour the paper reports, at a reduced trace scale. Bands are
// deliberately generous — these tests protect the *shapes* (who is
// high, who is low, which way the filters move things), not exact
// percentages.

import (
	"testing"

	"streamsim/internal/core"
	"streamsim/internal/stream"
	"streamsim/internal/workload"
)

// testScale keeps the whole characteristics suite around a second.
const testScale = 0.3

// run traces one benchmark through a config.
func run(t *testing.T, name string, size workload.Size, cfg core.Config) core.Results {
	t.Helper()
	w, err := workload.New(name, size)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(sys, testScale); err != nil {
		t.Fatal(err)
	}
	return sys.Results()
}

// table1Size mirrors the experiment harness's input selection.
func table1Size(name string) workload.Size {
	switch name {
	case "appsp", "appbt", "applu":
		return workload.SizeLarge
	default:
		return workload.SizeSmall
	}
}

func plain(n int) core.Config {
	cfg := core.DefaultConfig()
	cfg.Streams = stream.Config{Streams: n, Depth: 2}
	cfg.UnitFilterEntries = 0
	cfg.Stride = core.NoStrideDetection
	return cfg
}

func filtered() core.Config {
	cfg := plain(10)
	cfg.UnitFilterEntries = 16
	return cfg
}

func strided() core.Config {
	cfg := filtered()
	cfg.Stride = core.CzoneScheme
	cfg.StrideFilterEntries = 16
	cfg.CzoneBits = 16
	return cfg
}

func TestEmbarNearPerfectStreaming(t *testing.T) {
	r := run(t, "embar", workload.SizeSmall, plain(2))
	if hr := r.StreamHitRate(); hr < 95 {
		t.Errorf("embar hit rate = %.1f, want > 95 (single long stream)", hr)
	}
}

func TestMajorityInPaperBand(t *testing.T) {
	// Paper: "majority of the benchmarks show hit rates in the 50-80%
	// range" (we count >= 45 to absorb scale noise at the low edge).
	inBand := 0
	for _, name := range workload.Names() {
		r := run(t, name, table1Size(name), plain(10))
		if hr := r.StreamHitRate(); hr >= 45 {
			inBand++
		}
	}
	if inBand < 9 {
		t.Errorf("only %d/15 benchmarks reach 45%% hit rate; paper has a clear majority in 50-80%%", inBand)
	}
}

func TestIrregularBenchmarksAreLow(t *testing.T) {
	// adm and dyfesm reference data via scatter/gather and must sit at
	// the bottom of Figure 3.
	for _, name := range []string{"adm", "dyfesm"} {
		r := run(t, name, workload.SizeSmall, plain(10))
		if hr := r.StreamHitRate(); hr > 45 {
			t.Errorf("%s hit rate = %.1f, want < 45 (indirection-bound)", name, hr)
		}
	}
}

func TestFftpdeLowWithoutStrideDetection(t *testing.T) {
	r := run(t, "fftpde", workload.SizeSmall, plain(10))
	if hr := r.StreamHitRate(); hr > 45 {
		t.Errorf("fftpde unit-only hit rate = %.1f, want < 45 (large strides)", hr)
	}
}

func TestHitRatePlateausWithStreams(t *testing.T) {
	// Figure 3: hit rate grows with stream count and saturates by ~8.
	for _, name := range []string{"mgrid", "cgm"} {
		h2 := run(t, name, workload.SizeSmall, plain(2)).StreamHitRate()
		h8 := run(t, name, workload.SizeSmall, plain(8)).StreamHitRate()
		h10 := run(t, name, workload.SizeSmall, plain(10)).StreamHitRate()
		if h8 < h2 {
			t.Errorf("%s: hit rate fell from %.1f (2 streams) to %.1f (8)", name, h2, h8)
		}
		if h8-h2 < 10 {
			t.Errorf("%s: hit rate barely grows with streams (%.1f -> %.1f)", name, h2, h8)
		}
		if h10-h8 > 8 {
			t.Errorf("%s: no saturation by 8 streams (%.1f -> %.1f)", name, h8, h10)
		}
	}
}

func TestFilterCutsBandwidthEverywhere(t *testing.T) {
	// Figure 5's headline: the filter reduces EB for every benchmark,
	// usually by more than half.
	halved := 0
	for _, name := range workload.Names() {
		size := table1Size(name)
		eb0 := run(t, name, size, plain(10)).ExtraBandwidth()
		eb1 := run(t, name, size, filtered()).ExtraBandwidth()
		if eb1 > eb0 {
			t.Errorf("%s: filter increased EB %.1f -> %.1f", name, eb0, eb1)
		}
		if eb1 <= eb0/2 {
			halved++
		}
	}
	if halved < 8 {
		t.Errorf("filter halved EB for only %d/15 benchmarks; paper: 'often more than 50%%'", halved)
	}
}

func TestFilterCostsAppbtHitRate(t *testing.T) {
	// Section 6.1: appbt's short streams make the filter expensive
	// (65% -> 45% in the paper).
	p := run(t, "appbt", workload.SizeLarge, plain(10)).StreamHitRate()
	f := run(t, "appbt", workload.SizeLarge, filtered()).StreamHitRate()
	if p-f < 8 {
		t.Errorf("appbt filter cost only %.1f points (%.1f -> %.1f), want a visible drop", p-f, p, f)
	}
}

func TestFilterGentleOnLongStreamCodes(t *testing.T) {
	// trfd and cgm keep their hit rates under the filter.
	for _, name := range []string{"trfd", "cgm"} {
		p := run(t, name, workload.SizeSmall, plain(10)).StreamHitRate()
		f := run(t, name, workload.SizeSmall, filtered()).StreamHitRate()
		if p-f > 6 {
			t.Errorf("%s: filter cost %.1f points (%.1f -> %.1f), want ~none", name, p-f, p, f)
		}
	}
}

func TestStrideDetectionRecoversStridedCodes(t *testing.T) {
	// Figure 8: fftpde, appsp and trfd gain dramatically.
	for _, name := range []string{"fftpde", "appsp", "trfd"} {
		size := table1Size(name)
		u := run(t, name, size, filtered()).StreamHitRate()
		s := run(t, name, size, strided()).StreamHitRate()
		if s-u < 15 {
			t.Errorf("%s: stride detection gained only %.1f points (%.1f -> %.1f), want >= 15",
				name, s-u, u, s)
		}
	}
}

func TestStrideDetectionMinorElsewhere(t *testing.T) {
	// Figure 8: gains in other benchmarks are minor.
	for _, name := range []string{"cgm", "appbt", "applu", "adm", "bdna", "is", "embar"} {
		size := table1Size(name)
		u := run(t, name, size, filtered()).StreamHitRate()
		s := run(t, name, size, strided()).StreamHitRate()
		if s-u > 12 {
			t.Errorf("%s: stride detection gained %.1f points (%.1f -> %.1f), paper says minor",
				name, s-u, u, s)
		}
	}
}

func TestCzoneWindowForFftpde(t *testing.T) {
	// Figure 9: fftpde needs czone >= 16 bits; a 12-bit czone is too
	// small for its 2^14-word z stride.
	small := strided()
	small.CzoneBits = 12
	hSmall := run(t, "fftpde", workload.SizeSmall, small).StreamHitRate()
	hGood := run(t, "fftpde", workload.SizeSmall, strided()).StreamHitRate()
	if hGood-hSmall < 15 {
		t.Errorf("fftpde czone 12 vs 16 bits: %.1f vs %.1f, want a wide gap", hSmall, hGood)
	}
}

func TestScalingAcrossInputSizes(t *testing.T) {
	// Table 4: appsp, applu and mgrid improve with data size; cgm
	// degrades (irregular large input).
	for _, name := range []string{"appsp", "applu", "mgrid"} {
		s := run(t, name, workload.SizeSmall, strided()).StreamHitRate()
		l := run(t, name, workload.SizeLarge, strided()).StreamHitRate()
		if l < s {
			t.Errorf("%s: hit rate fell with data size (%.1f -> %.1f), paper shows growth", name, s, l)
		}
	}
	s := run(t, "cgm", workload.SizeSmall, strided()).StreamHitRate()
	l := run(t, "cgm", workload.SizeLarge, strided()).StreamHitRate()
	if l > s-15 {
		t.Errorf("cgm: large input hit rate %.1f vs small %.1f, paper shows a collapse (85 -> 51)", l, s)
	}
}

func TestSuiteMissRateOrdering(t *testing.T) {
	// Table 1: "PERFECT codes show much lower primary cache miss rates
	// than the NAS codes" — compare suite means.
	mean := func(names []string) float64 {
		var sum float64
		for _, n := range names {
			sum += run(t, n, table1Size(n), plain(10)).DataMissRate()
		}
		return sum / float64(len(names))
	}
	nas, perfect := mean(workload.NASNames()), mean(workload.PerfectNames())
	if perfect >= nas {
		t.Errorf("PERFECT mean miss rate %.2f >= NAS %.2f; paper ordering violated", perfect, nas)
	}
}

func TestEmbarLowestBandwidthOverhead(t *testing.T) {
	// Table 2: embar's EB is the smallest by far (8% in the paper).
	eb := run(t, "embar", workload.SizeSmall, plain(10)).ExtraBandwidth()
	if eb > 10 {
		t.Errorf("embar EB = %.1f%%, want < 10%%", eb)
	}
}

func TestStreamLengthExtremes(t *testing.T) {
	// Table 3: trfd is long-stream dominated; adm is short-dominated.
	r := run(t, "trfd", workload.SizeSmall, plain(10))
	p := r.Streams.Lengths.Percent()
	if p[4] < 60 {
		t.Errorf("trfd >20 share = %.1f, want > 60 (paper: 90)", p[4])
	}
	r = run(t, "adm", workload.SizeSmall, plain(10))
	p = r.Streams.Lengths.Percent()
	if p[0] < 60 {
		t.Errorf("adm 1-5 share = %.1f, want > 60 (paper: 73)", p[0])
	}
}
